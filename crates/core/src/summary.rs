//! Content-addressed per-method summaries and their stores.
//!
//! The compositional layer (after RacerD's per-method summaries) splits
//! each pipeline stage's per-method work into a [`MethodSummary`]:
//!
//! - the **pointer digest** — a content hash of the statements the
//!   Andersen solver reacts to (keys whole-`Analysis` artifact reuse);
//! - **call dominance** ([`shbg::CallDominance`]) — the dominance pairs
//!   HB rules 2–4 query;
//! - **constant-propagation facts** ([`prefilter::constprop::ConstFacts`])
//!   — infeasible branch edges and dead blocks for the prefilter and
//!   refuter;
//! - **access sites** ([`pointer::AccessSite`]) — the field accesses the
//!   candidate stage instantiates per context.
//!
//! Every fact is a pure function of one method body (plus the config),
//! so summaries are keyed by `fnv64(structural fingerprint ‖ printed
//! method body ‖ config fingerprint)`:
//!
//! - the **structural fingerprint** covers the class/field/method tables
//!   *excluding bodies* — renames, signature changes, or hierarchy edits
//!   shift ids and invalidate every summary (conservative but sound);
//! - the printed body makes the key content-addressed: editing one
//!   method changes only that method's key;
//! - the **config fingerprint** (selector + pointer options) makes
//!   stores safely shareable across configurations — a flag flip misses
//!   the whole store rather than mixing incompatible facts.
//!
//! Whole-`Analysis` artifacts are additionally cached under
//! `fnv64(structural fp ‖ config fp ‖ every method's pointer digest)`:
//! if no solver-relevant statement changed anywhere, the previous
//! points-to result is reused outright and the warm run performs zero
//! worklist iterations. The on-disk backend persists artifacts too, as
//! versioned binary blobs ([`pointer::artifact`]) next to the summary
//! files, so the reuse survives process boundaries: a cold `sierra
//! analyze`, a restarted `serve`, or a fresh CI job warm-starts from
//! `--cache-dir` exactly like an in-memory warm hit.
//!
//! ## Corpus-shared framework summaries
//!
//! Most corpus apps embed the *same* framework model, and a framework
//! method's summary depends only on framework content — yet the
//! standard key covers the whole program's structural fingerprint, so
//! per-app stores recompute identical framework summaries once per app.
//! [`load_or_summarize`] therefore accepts an optional **shared store**:
//! methods of [`apir::Origin::Framework`] classes are additionally
//! keyed by [`framework_fingerprint`] (the structural fingerprint
//! restricted to framework entities, identical across apps built from
//! one framework model) and looked up shared-first. A miss promotes the
//! freshly computed summary into the shared store, so the framework
//! slice of an entire corpus is summarized exactly once. The two key
//! spaces cannot collide semantically — a framework-keyed entry is only
//! ever looked up by sessions whose framework slice hashes identically
//! — so one backing store may safely serve as both the per-app and the
//! shared layer (how the `--shared-store` flag wires it).
//!
//! ## Arena-stable keys
//!
//! Sessions are built through [`crate::SessionBuilder`], which may
//! intern an app's names into a process-wide shared
//! [`apir::SymbolArena`] (`sierra serve`, corpus runs) instead of a
//! private per-program interner. Summary keys are **independent of that
//! choice**: every fingerprint hashes resolved name *text* (via
//! [`Program::name`] and the printed body), never raw symbol values, so
//! a store primed without a shared arena hits from sessions built over
//! one — and hits across processes whose arenas interned names in
//! different orders.

use apir::{BlockId, FieldId, Local, MethodId, Origin, Program, ProgramPrinter, StmtAddr};
use pointer::{
    extract_pointer_facts, fnv64, method_access_sites, pointer_digest, AccessSite, Analysis,
    AnalysisOptions, Fnv64, SelectorKind,
};
use prefilter::constprop::{self, ConstFacts};
use shbg::CallDominance;
use std::collections::{HashMap, HashSet};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Every per-method fact the pipeline's stages need, cached by content
/// hash of the method body plus the config fingerprint.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodSummary {
    /// Hash over the solver-relevant statements (see
    /// [`pointer::pointer_digest`]).
    pub pointer_digest: u64,
    /// Call-statement dominance pairs for HB rules 2–4.
    pub dominance: CallDominance,
    /// Constant-propagation facts for the prefilter and refuter.
    pub consts: ConstFacts,
    /// Field-access sites for candidate generation.
    pub sites: Vec<AccessSite>,
}

/// Computes the full summary of one method body.
pub fn summarize_method(
    program: &Program,
    fw: &android_model::FrameworkClasses,
    method: MethodId,
    index_sensitive: bool,
) -> MethodSummary {
    let m = program.method(method);
    MethodSummary {
        pointer_digest: pointer_digest(&extract_pointer_facts(m)),
        dominance: CallDominance::compute(m),
        consts: constprop::analyze_method(m),
        sites: method_access_sites(program, fw, method, index_sensitive),
    }
}

/// Fingerprint of the program structure *excluding method bodies*:
/// class names, hierarchy, interfaces, field names/types/staticness, and
/// method signatures. Summaries are only valid while ids are stable, and
/// ids are assigned by table position, so any structural change
/// conservatively invalidates every summary of the program.
pub fn structural_fingerprint(program: &Program) -> u64 {
    let mut h = Fnv64::new();
    for c in program.classes() {
        h.write(
            format!(
                "c{}:{};super={:?};if={:?};int={};origin={:?};",
                c.id.0,
                program.name(c.name),
                c.super_class,
                c.interfaces,
                c.is_interface,
                c.origin
            )
            .as_bytes(),
        );
    }
    for f in program.fields() {
        h.write(
            format!(
                "f{}:{}.{};ty={:?};st={};",
                f.id.0,
                f.class.0,
                program.name(f.name),
                f.ty,
                f.is_static
            )
            .as_bytes(),
        );
    }
    for m in program.methods() {
        h.write(
            format!(
                "m{}:{}.{};p={};ret={:?};st={};abs={};",
                m.id.0,
                m.class.0,
                program.name(m.name),
                m.param_count,
                m.ret,
                m.is_static,
                m.is_abstract
            )
            .as_bytes(),
        );
    }
    h.finish()
}

/// [`structural_fingerprint`] restricted to framework entities: classes
/// of [`Origin::Framework`] plus the fields and methods they declare,
/// rendered in the same per-entity format. Apps built from the same
/// framework model produce the same value regardless of their app/
/// library code (the framework installs first, so its ids are stable
/// across apps), which makes it the key prefix for the corpus-shared
/// summary layer: a framework method's summary keyed by this
/// fingerprint is valid for *every* app sharing the framework slice.
pub fn framework_fingerprint(program: &Program) -> u64 {
    let mut h = Fnv64::new();
    for c in program.classes() {
        if c.origin != Origin::Framework {
            continue;
        }
        h.write(
            format!(
                "c{}:{};super={:?};if={:?};int={};origin={:?};",
                c.id.0,
                program.name(c.name),
                c.super_class,
                c.interfaces,
                c.is_interface,
                c.origin
            )
            .as_bytes(),
        );
    }
    for f in program.fields() {
        if program.class(f.class).origin != Origin::Framework {
            continue;
        }
        h.write(
            format!(
                "f{}:{}.{};ty={:?};st={};",
                f.id.0,
                f.class.0,
                program.name(f.name),
                f.ty,
                f.is_static
            )
            .as_bytes(),
        );
    }
    for m in program.methods() {
        if program.class(m.class).origin != Origin::Framework {
            continue;
        }
        h.write(
            format!(
                "m{}:{}.{};p={};ret={:?};st={};abs={};",
                m.id.0,
                m.class.0,
                program.name(m.name),
                m.param_count,
                m.ret,
                m.is_static,
                m.is_abstract
            )
            .as_bytes(),
        );
    }
    h.finish()
}

/// Fingerprint of the configuration axes that change per-method facts:
/// the context selector and the pointer-analysis options. Any change
/// misses the whole store.
pub fn config_fingerprint(selector: SelectorKind, options: AnalysisOptions) -> u64 {
    fnv64(format!("{selector:?};{options:?}").as_bytes())
}

/// The content-addressed summary key of one method.
pub fn summary_key(structural_fp: u64, printed_body: &str, config_fp: u64) -> u64 {
    Fnv64::new()
        .write_u64(structural_fp)
        .write(printed_body.as_bytes())
        .write_u64(config_fp)
        .finish()
}

/// A content-addressed store of per-method summaries and (in-memory)
/// whole-`Analysis` artifacts. Keys are content hashes, so a store never
/// needs invalidation logic: stale entries are simply never looked up
/// again. Implementations must be shareable across the serve worker pool
/// and the overlapped comparison pass (`Send + Sync`). Keys hash name
/// text rather than symbol values, so one store serves sessions built
/// over a shared [`apir::SymbolArena`] and private-interner sessions
/// interchangeably.
pub trait SummaryStore: Send + Sync + std::fmt::Debug {
    /// Looks up a method summary by key.
    fn get(&self, key: u64) -> Option<Arc<MethodSummary>>;

    /// Stores a method summary under its key.
    fn put(&self, key: u64, summary: Arc<MethodSummary>);

    /// Looks up a cached points-to `Analysis` artifact (memory-only;
    /// backends without artifact caching return `None`).
    fn get_analysis(&self, _key: u64) -> Option<Arc<Analysis>> {
        None
    }

    /// Caches a points-to `Analysis` artifact.
    fn put_analysis(&self, _key: u64, _analysis: Arc<Analysis>) {}

    /// Looks up a serialized `Analysis` artifact blob (the durable,
    /// cross-process counterpart of [`Self::get_analysis`]). Backends
    /// without durable storage return `None`. Returned bytes carry a
    /// validated envelope ([`pointer::artifact::envelope_is_valid`]);
    /// deeper decode failures are the caller's (plain) miss.
    fn get_artifact(&self, _key: u64) -> Option<Vec<u8>> {
        None
    }

    /// Persists a serialized `Analysis` artifact blob.
    fn put_artifact(&self, _key: u64, _blob: &[u8]) {}

    /// Whether [`Self::put_artifact`] durably stores blobs. Sessions
    /// skip serialization entirely for stores that don't, so the
    /// in-memory path never pays encode cost.
    fn persists_artifacts(&self) -> bool {
        false
    }

    /// Lifetime count of lookups that found an entry but could not use
    /// it (torn, truncated, or version-mismatched on-disk files).
    /// Backends without durable storage cannot corrupt and return 0.
    fn corrupt_misses(&self) -> usize {
        0
    }

    /// Lifetime count of entries evicted to enforce a size cap.
    fn evictions(&self) -> usize {
        0
    }
}

/// An in-memory [`SummaryStore`] — the default backend, also used by the
/// server without `--cache-dir`.
#[derive(Debug, Default)]
pub struct MemoryStore {
    summaries: Mutex<HashMap<u64, Arc<MethodSummary>>>,
    analyses: Mutex<HashMap<u64, Arc<Analysis>>>,
}

impl MemoryStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }
}

impl SummaryStore for MemoryStore {
    fn get(&self, key: u64) -> Option<Arc<MethodSummary>> {
        self.summaries
            .lock()
            .expect("store lock")
            .get(&key)
            .cloned()
    }

    fn put(&self, key: u64, summary: Arc<MethodSummary>) {
        self.summaries
            .lock()
            .expect("store lock")
            .insert(key, summary);
    }

    fn get_analysis(&self, key: u64) -> Option<Arc<Analysis>> {
        self.analyses.lock().expect("store lock").get(&key).cloned()
    }

    fn put_analysis(&self, key: u64, analysis: Arc<Analysis>) {
        self.analyses
            .lock()
            .expect("store lock")
            .insert(key, analysis);
    }
}

/// An on-disk [`SummaryStore`]: each summary is one plain-text file
/// `<key>.sum` and each `Analysis` artifact one binary blob `<key>.art`
/// under the cache directory, so both persist across processes (the
/// `--cache-dir` backend). Artifacts additionally warm an in-memory map
/// so repeat hits within one process skip deserialization. Unreadable,
/// truncated, or version-mismatched files of either kind are treated as
/// misses — a corrupt cache can cost recomputation, never correctness —
/// but each corrupt file is counted (surfacing in [`crate::LinkStats`])
/// and its path logged once; the next put overwrites (repairs) it.
/// With a size cap ([`Self::with_max_bytes`], the `--cache-max-mb`
/// flag), every write may evict the oldest entries — summary files and
/// artifact blobs alike, both counted toward the cap — until it holds.
#[derive(Debug)]
pub struct DiskStore {
    dir: PathBuf,
    analyses: Mutex<HashMap<u64, Arc<Analysis>>>,
    max_bytes: Option<u64>,
    corrupt: AtomicUsize,
    evicted: AtomicUsize,
    logged: Mutex<HashSet<PathBuf>>,
}

/// Version header of the on-disk summary format; bump on layout change
/// so stale caches miss instead of misparse.
const DISK_FORMAT: &str = "sierra-summary v1";

impl DiskStore {
    /// Opens (creating if needed) an unbounded store rooted at `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(Self {
            dir,
            analyses: Mutex::new(HashMap::new()),
            max_bytes: None,
            corrupt: AtomicUsize::new(0),
            evicted: AtomicUsize::new(0),
            logged: Mutex::new(HashSet::new()),
        })
    }

    /// Opens a store capped at `max_bytes` of summary files; each write
    /// evicts oldest-first (modification time, then file name as the
    /// tiebreak) until the total size fits. `0` caps the store to
    /// nothing but stays correct: entries are written, then immediately
    /// reclaimed.
    pub fn with_max_bytes(dir: impl Into<PathBuf>, max_bytes: u64) -> std::io::Result<Self> {
        let mut store = Self::new(dir)?;
        store.max_bytes = Some(max_bytes);
        Ok(store)
    }

    fn path(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{key:016x}.sum"))
    }

    fn artifact_path(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{key:016x}.art"))
    }

    /// Records a corrupt file and logs its path the first time.
    fn note_corrupt(&self, path: &std::path::Path) {
        self.corrupt.fetch_add(1, Ordering::Relaxed);
        let mut logged = self.logged.lock().expect("store lock");
        if logged.insert(path.to_path_buf()) {
            eprintln!(
                "sierra: cache entry {} is corrupt; recomputing (entry will be rewritten)",
                path.display()
            );
        }
    }

    /// Deletes oldest cache entries (summary files and artifact blobs)
    /// until the store fits its cap.
    fn enforce_cap(&self) {
        let Some(max) = self.max_bytes else { return };
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return;
        };
        let mut files: Vec<(std::time::SystemTime, PathBuf, u64)> = entries
            .flatten()
            .filter(|e| {
                e.path()
                    .extension()
                    .is_some_and(|x| x == "sum" || x == "art")
            })
            .filter_map(|e| {
                let md = e.metadata().ok()?;
                let mtime = md.modified().ok()?;
                Some((mtime, e.path(), md.len()))
            })
            .collect();
        let mut total: u64 = files.iter().map(|&(_, _, len)| len).sum();
        if total <= max {
            return;
        }
        files.sort();
        for (_, path, len) in files {
            if total <= max {
                break;
            }
            if std::fs::remove_file(&path).is_ok() {
                total = total.saturating_sub(len);
                self.evicted.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

impl SummaryStore for DiskStore {
    fn get(&self, key: u64) -> Option<Arc<MethodSummary>> {
        let path = self.path(key);
        let text = std::fs::read_to_string(&path).ok()?;
        match parse_summary(&text) {
            Some(s) => Some(Arc::new(s)),
            None => {
                self.note_corrupt(&path);
                None
            }
        }
    }

    fn put(&self, key: u64, summary: Arc<MethodSummary>) {
        let path = self.path(key);
        let tmp = self.dir.join(format!("{key:016x}.tmp"));
        // Write-then-rename so concurrent readers never see a torn file.
        if std::fs::write(&tmp, render_summary(&summary)).is_ok() {
            let _ = std::fs::rename(&tmp, &path);
        }
        self.enforce_cap();
    }

    fn get_analysis(&self, key: u64) -> Option<Arc<Analysis>> {
        self.analyses.lock().expect("store lock").get(&key).cloned()
    }

    fn put_analysis(&self, key: u64, analysis: Arc<Analysis>) {
        self.analyses
            .lock()
            .expect("store lock")
            .insert(key, analysis);
    }

    fn get_artifact(&self, key: u64) -> Option<Vec<u8>> {
        let path = self.artifact_path(key);
        let bytes = std::fs::read(&path).ok()?;
        if pointer::artifact::envelope_is_valid(&bytes) {
            Some(bytes)
        } else {
            self.note_corrupt(&path);
            None
        }
    }

    fn put_artifact(&self, key: u64, blob: &[u8]) {
        let path = self.artifact_path(key);
        let tmp = self.dir.join(format!("{key:016x}.art.tmp"));
        // Write-then-rename so concurrent readers never see a torn blob.
        if std::fs::write(&tmp, blob).is_ok() {
            let _ = std::fs::rename(&tmp, &path);
        }
        self.enforce_cap();
    }

    fn persists_artifacts(&self) -> bool {
        true
    }

    fn corrupt_misses(&self) -> usize {
        self.corrupt.load(Ordering::Relaxed)
    }

    fn evictions(&self) -> usize {
        self.evicted.load(Ordering::Relaxed)
    }
}

/// Renders a summary in the line-oriented on-disk format.
fn render_summary(s: &MethodSummary) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "{DISK_FORMAT}");
    let _ = writeln!(out, "digest {}", s.pointer_digest);
    for &(a_bb, a_st, b_bb, b_st) in &s.dominance.pairs {
        let _ = writeln!(out, "dom {a_bb} {a_st} {b_bb} {b_st}");
    }
    for &(from, to) in &s.consts.infeasible {
        let _ = writeln!(out, "inf {} {}", from.0, to.0);
    }
    for &bb in &s.consts.dead_blocks {
        let _ = writeln!(out, "dead {}", bb.0);
    }
    for site in &s.sites {
        let _ = writeln!(
            out,
            "site {} {} {} {} {} {} {}",
            site.addr.method.0,
            site.addr.block.0,
            site.addr.stmt,
            site.field.0,
            site.base.map_or(-1, |l| l.0 as i64),
            if site.is_write { 'w' } else { 'r' },
            if site.is_static { 's' } else { 'i' },
        );
    }
    out
}

/// Parses the on-disk format; any deviation is a miss (`None`).
fn parse_summary(text: &str) -> Option<MethodSummary> {
    let mut lines = text.lines();
    if lines.next()? != DISK_FORMAT {
        return None;
    }
    let digest_line = lines.next()?;
    let pointer_digest = digest_line.strip_prefix("digest ")?.parse().ok()?;
    let mut dominance = CallDominance::default();
    let mut consts = ConstFacts::default();
    let mut sites = Vec::new();
    for line in lines {
        let mut parts = line.split(' ');
        let tag = parts.next()?;
        let mut next_u32 = || -> Option<u32> { parts.next()?.parse().ok() };
        match tag {
            "dom" => dominance
                .pairs
                .push((next_u32()?, next_u32()?, next_u32()?, next_u32()?)),
            "inf" => consts
                .infeasible
                .push((BlockId(next_u32()?), BlockId(next_u32()?))),
            "dead" => consts.dead_blocks.push(BlockId(next_u32()?)),
            "site" => {
                let addr = StmtAddr::new(MethodId(next_u32()?), BlockId(next_u32()?), next_u32()?);
                let field = FieldId(next_u32()?);
                let base: i64 = parts.next()?.parse().ok()?;
                let is_write = match parts.next()? {
                    "w" => true,
                    "r" => false,
                    _ => return None,
                };
                let is_static = match parts.next()? {
                    "s" => true,
                    "i" => false,
                    _ => return None,
                };
                sites.push(AccessSite {
                    addr,
                    field,
                    base: (base >= 0).then_some(Local(base as u32)),
                    is_write,
                    is_static,
                });
            }
            _ => return None,
        }
    }
    Some(MethodSummary {
        pointer_digest,
        dominance,
        consts,
        sites,
    })
}

/// Computes (or retrieves) summaries for every method with a body, in
/// method-id order, consulting `store` by content key — and, for
/// framework-origin methods, `shared` first under the framework-scoped
/// key (see [`framework_fingerprint`]). A shared miss that resolves
/// elsewhere promotes the summary into the shared store, so across a
/// corpus each framework method is summarized exactly once. Returns the
/// summary list plus `(reused, recomputed, shared_hits)` counts;
/// shared-layer hits count toward `shared_hits` only, keeping `reused`
/// comparable with and without a shared store.
#[allow(clippy::type_complexity)]
pub fn load_or_summarize(
    program: &Program,
    fw: &android_model::FrameworkClasses,
    index_sensitive: bool,
    structural_fp: u64,
    config_fp: u64,
    store: &dyn SummaryStore,
    shared: Option<&dyn SummaryStore>,
) -> (Vec<(MethodId, Arc<MethodSummary>)>, usize, usize, usize) {
    let printer = ProgramPrinter::new(program);
    let framework_fp = shared.map(|_| framework_fingerprint(program));
    let mut methods = Vec::new();
    let (mut reused, mut recomputed, mut shared_hits) = (0, 0, 0);
    for m in program.methods() {
        if !m.has_body() {
            continue;
        }
        let body = printer.print_method(m.id);
        let key = summary_key(structural_fp, &body, config_fp);
        // Framework methods additionally live in the shared layer under
        // a key independent of this app's app/library code.
        let shared_key = match (shared, framework_fp) {
            (Some(_), Some(fp)) if program.class(m.class).origin == Origin::Framework => {
                Some(summary_key(fp, &body, config_fp))
            }
            _ => None,
        };
        if let (Some(sh), Some(sk)) = (shared, shared_key) {
            if let Some(s) = sh.get(sk) {
                shared_hits += 1;
                methods.push((m.id, s));
                continue;
            }
        }
        let summary = match store.get(key) {
            Some(s) => {
                reused += 1;
                s
            }
            None => {
                recomputed += 1;
                let s = Arc::new(summarize_method(program, fw, m.id, index_sensitive));
                store.put(key, Arc::clone(&s));
                s
            }
        };
        if let (Some(sh), Some(sk)) = (shared, shared_key) {
            sh.put(sk, Arc::clone(&summary));
        }
        methods.push((m.id, summary));
    }
    (methods, reused, recomputed, shared_hits)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_summary() -> MethodSummary {
        MethodSummary {
            pointer_digest: 0xdead_beef_0123,
            dominance: CallDominance {
                pairs: vec![(0, 1, 2, 0), (1, 0, 3, 2)],
            },
            consts: ConstFacts {
                infeasible: vec![(BlockId(0), BlockId(2))],
                dead_blocks: vec![BlockId(2)],
            },
            sites: vec![
                AccessSite {
                    addr: StmtAddr::new(MethodId(7), BlockId(1), 3),
                    field: FieldId(4),
                    base: Some(Local(2)),
                    is_write: true,
                    is_static: false,
                },
                AccessSite {
                    addr: StmtAddr::new(MethodId(7), BlockId(0), 0),
                    field: FieldId(9),
                    base: None,
                    is_write: false,
                    is_static: true,
                },
            ],
        }
    }

    #[test]
    fn disk_format_round_trips() {
        let s = sample_summary();
        let parsed = parse_summary(&render_summary(&s)).expect("parses");
        assert_eq!(parsed, s);
    }

    #[test]
    fn parse_rejects_corrupt_and_versioned_input() {
        assert!(parse_summary("").is_none());
        assert!(parse_summary("sierra-summary v0\ndigest 1\n").is_none());
        let mut text = render_summary(&sample_summary());
        text.push_str("junk line\n");
        assert!(parse_summary(&text).is_none());
    }

    #[test]
    fn disk_store_round_trips_and_misses_unknown_keys() {
        let dir = std::env::temp_dir().join(format!("sierra-store-test-{}", std::process::id()));
        let store = DiskStore::new(&dir).expect("store dir");
        let s = Arc::new(sample_summary());
        store.put(42, Arc::clone(&s));
        assert_eq!(store.get(42).as_deref(), Some(&*s));
        assert!(store.get(43).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_store_counts_corrupt_entries_as_misses() {
        let dir = std::env::temp_dir().join(format!("sierra-corrupt-test-{}", std::process::id()));
        let store = DiskStore::new(&dir).expect("store dir");
        let s = Arc::new(sample_summary());
        store.put(7, Arc::clone(&s));

        // Absent keys are plain misses, not corruption.
        assert!(store.get(99).is_none());
        assert_eq!(store.corrupt_misses(), 0);

        // Truncate the entry mid-file: the lookup misses, the counter
        // moves, and a re-put repairs the entry.
        std::fs::write(
            dir.join(format!("{:016x}.sum", 7u64)),
            "sierra-summary v1\ndig",
        )
        .expect("truncate");
        assert!(store.get(7).is_none());
        assert_eq!(store.corrupt_misses(), 1);
        assert!(store.get(7).is_none(), "still corrupt until rewritten");
        assert_eq!(store.corrupt_misses(), 2, "every corrupt hit counts");
        store.put(7, Arc::clone(&s));
        assert_eq!(store.get(7).as_deref(), Some(&*s));
        assert_eq!(store.corrupt_misses(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Wraps `payload` in the artifact envelope format
    /// ([`pointer::artifact`]); the literal magic/version here pin the
    /// on-disk layout.
    fn artifact_blob(payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(b"SIERRART");
        out.extend_from_slice(&2u32.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&fnv64(payload).to_le_bytes());
        out.extend_from_slice(payload);
        out
    }

    #[test]
    fn disk_store_round_trips_artifact_blobs() {
        let dir = std::env::temp_dir().join(format!("sierra-art-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = DiskStore::new(&dir).expect("store dir");
        assert!(store.get_artifact(5).is_none(), "cold store misses");
        let blob = artifact_blob(b"solver state bytes");
        store.put_artifact(5, &blob);
        assert_eq!(store.get_artifact(5).as_deref(), Some(&blob[..]));
        assert!(store.get_artifact(6).is_none());
        assert_eq!(store.corrupt_misses(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_store_counts_corrupt_artifact_blobs_and_repairs_on_put() {
        let dir =
            std::env::temp_dir().join(format!("sierra-art-corrupt-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = DiskStore::new(&dir).expect("store dir");
        let blob = artifact_blob(b"points-to artifact");
        store.put_artifact(9, &blob);

        // Truncation breaks the envelope: counted miss, not an error.
        std::fs::write(
            dir.join(format!("{:016x}.art", 9u64)),
            &blob[..blob.len() - 3],
        )
        .expect("truncate");
        assert!(store.get_artifact(9).is_none());
        assert_eq!(store.corrupt_misses(), 1);

        // A version bump from a future layout is equally a miss.
        let mut skewed = blob.clone();
        skewed[8] = skewed[8].wrapping_add(1);
        std::fs::write(dir.join(format!("{:016x}.art", 9u64)), &skewed).expect("skew");
        assert!(store.get_artifact(9).is_none());
        assert_eq!(store.corrupt_misses(), 2);

        // The next put repairs the entry in place.
        store.put_artifact(9, &blob);
        assert_eq!(store.get_artifact(9).as_deref(), Some(&blob[..]));
        assert_eq!(store.corrupt_misses(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn size_cap_counts_and_evicts_artifact_blobs_too() {
        let dir =
            std::env::temp_dir().join(format!("sierra-art-evict-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let blob = artifact_blob(&[0xabu8; 256]);
        // Cap fits two blobs plus one summary, nothing more.
        let one_entry = render_summary(&sample_summary()).len() as u64;
        let store =
            DiskStore::with_max_bytes(&dir, 2 * blob.len() as u64 + one_entry).expect("store dir");
        let age = |name: String, secs: u64| {
            let old = std::time::SystemTime::now() - std::time::Duration::from_secs(secs);
            let f = std::fs::File::options()
                .write(true)
                .open(dir.join(name))
                .expect("open entry");
            f.set_modified(old).expect("set mtime");
        };
        store.put_artifact(1, &blob);
        age(format!("{:016x}.art", 1u64), 300);
        store.put(2, Arc::new(sample_summary()));
        age(format!("{:016x}.sum", 2u64), 200);
        store.put_artifact(3, &blob);
        age(format!("{:016x}.art", 3u64), 100);
        assert_eq!(store.evictions(), 0, "exactly at the cap");

        // A new blob exceeds the cap; the oldest entry — an artifact
        // blob — is reclaimed, proving blobs are both counted and
        // evictable.
        store.put_artifact(4, &blob);
        assert!(store.evictions() >= 1);
        assert!(store.get_artifact(1).is_none(), "oldest blob reclaimed");
        assert_eq!(store.get_artifact(4).as_deref(), Some(&blob[..]));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_store_evicts_oldest_first_under_a_size_cap() {
        let dir = std::env::temp_dir().join(format!("sierra-evict-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let one_entry = render_summary(&sample_summary()).len() as u64;
        // Room for two entries, not three.
        let store = DiskStore::with_max_bytes(&dir, 2 * one_entry).expect("store dir");
        let s = Arc::new(sample_summary());
        store.put(1, Arc::clone(&s));
        // Distinct mtimes so "oldest" is well-defined on coarse clocks.
        let age = |key: u64, secs: u64| {
            let path = dir.join(format!("{key:016x}.sum"));
            let old = std::time::SystemTime::now() - std::time::Duration::from_secs(secs);
            let f = std::fs::File::options()
                .write(true)
                .open(&path)
                .expect("open entry");
            f.set_modified(old).expect("set mtime");
        };
        age(1, 200);
        store.put(2, Arc::clone(&s));
        age(2, 100);
        assert_eq!(store.evictions(), 0, "under the cap, nothing to do");

        store.put(3, Arc::clone(&s));
        assert_eq!(store.evictions(), 1, "third entry exceeds the cap");
        assert!(store.get(1).is_none(), "the oldest entry was reclaimed");
        assert_eq!(store.get(2).as_deref(), Some(&*s));
        assert_eq!(store.get(3).as_deref(), Some(&*s));
        assert_eq!(store.corrupt_misses(), 0, "eviction is not corruption");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
