//! The random exploration driver.
//!
//! Dynamic race detectors only see what their inputs exercise (§1: "their
//! effectiveness hinges on high-quality inputs that can ensure good
//! coverage"). This driver models a realistic automated-testing session: a
//! random walk over lifecycle transitions, GUI events, broadcasts, and
//! task-queue draining — with bounded steps and imperfect screen coverage,
//! the two mechanisms behind dynamic false negatives.

use crate::decide::{Decider, RandomDecider, ScriptedDecider};
use crate::runtime::{Runtime, Trace};
use android_model::{AndroidApp, LifecycleEvent};

/// Driver knobs.
#[derive(Debug, Clone, Copy)]
pub struct DriverConfig {
    /// RNG seed.
    pub seed: u64,
    /// Random steps per activity episode.
    pub steps_per_episode: usize,
    /// Probability of visiting each activity at all.
    pub activity_coverage: f64,
}

impl Default for DriverConfig {
    fn default() -> Self {
        Self {
            seed: 42,
            steps_per_episode: 25,
            activity_coverage: 0.7,
        }
    }
}

/// Runs one exploration of `app`, returning the trace.
pub fn explore(app: &AndroidApp, config: DriverConfig) -> Trace {
    let decider = RandomDecider::new(config.seed);
    drive(
        app,
        decider,
        config.steps_per_episode,
        config.activity_coverage,
    )
    .0
}

/// Runs one exploration with a scripted schedule, returning the trace and
/// the realized decision log (consumed by the systematic explorer).
pub fn explore_scripted(
    app: &AndroidApp,
    script: Vec<usize>,
    steps_per_episode: usize,
) -> (Trace, Vec<(usize, usize)>) {
    // Scripted runs always cover every activity: coverage is a property
    // of random testing, not of schedule enumeration.
    let mut rt = Runtime::new(app, ScriptedDecider::new(script));
    run_episodes(&mut rt, app, steps_per_episode, 101);
    let (trace, decider) = rt.into_parts();
    (trace, decider.log)
}

fn drive<D: Decider>(
    app: &AndroidApp,
    decider: D,
    steps_per_episode: usize,
    activity_coverage: f64,
) -> (Trace, ()) {
    let mut rt = Runtime::new(app, decider);
    let coverage_buckets = (activity_coverage * 100.0).clamp(0.0, 100.0) as usize;
    run_episodes(&mut rt, app, steps_per_episode, coverage_buckets);
    (rt.trace, ())
}

fn run_episodes<D: Decider>(
    rt: &mut Runtime<'_, D>,
    app: &AndroidApp,
    steps_per_episode: usize,
    coverage_buckets: usize,
) {
    // Statically-declared receivers are registered for the whole run.
    for &r in &app.manifest.receivers {
        let inst = rt.alloc(r);
        rt.register_declared_receiver(inst);
    }

    let activities = app.manifest.activities.clone();
    for activity_class in activities {
        // `decide(100) < buckets` models imperfect screen coverage; with
        // buckets ≥ 100 every activity is visited.
        if coverage_buckets < 100 && rt.decide(100) >= coverage_buckets {
            continue; // this screen is never reached by the test inputs
        }
        episode(rt, activity_class, steps_per_episode);
    }
}

fn episode<D: Decider>(rt: &mut Runtime<'_, D>, activity_class: apir::ClassId, steps: usize) {
    let listeners_before = rt.listener_count();
    let act = rt.alloc(activity_class);
    rt.lifecycle_event(act, LifecycleEvent::Create);
    rt.lifecycle_event(act, LifecycleEvent::Start);
    rt.lifecycle_event(act, LifecycleEvent::Resume);

    let mut paused = false;
    for _ in 0..steps {
        let choice = rt.decide(11) as u8;
        match choice {
            // GUI events (only while resumed, only this episode's listeners).
            0..=2 => {
                let n = rt.listener_count();
                if !paused && n > listeners_before {
                    let idx = listeners_before + rt.decide(n - listeners_before);
                    rt.gui_event(idx);
                }
            }
            // Drain one main-looper task.
            3..=5 => {
                rt.drain_one_main();
            }
            // Run one background thread body.
            6..=7 => {
                rt.run_one_background();
            }
            // Deliver a broadcast (legal even while stopped — Figure 2's
            // bug window).
            8 => {
                let n = rt.receiver_count();
                if n > 0 {
                    let idx = rt.decide(n);
                    rt.broadcast(idx);
                }
            }
            // A pause/resume excursion.
            9 => {
                if paused {
                    rt.lifecycle_event(act, LifecycleEvent::Resume);
                    paused = false;
                } else {
                    rt.lifecycle_event(act, LifecycleEvent::Pause);
                    paused = true;
                }
            }
            // A full stop/restart excursion (Figure 5's outer cycle).
            _ => {
                if !paused {
                    rt.lifecycle_event(act, LifecycleEvent::Pause);
                }
                rt.lifecycle_event(act, LifecycleEvent::Stop);
                rt.lifecycle_event(act, LifecycleEvent::Restart);
                rt.lifecycle_event(act, LifecycleEvent::Start);
                rt.lifecycle_event(act, LifecycleEvent::Resume);
                paused = false;
            }
        }
    }

    if !paused {
        rt.lifecycle_event(act, LifecycleEvent::Pause);
    }
    // Randomly drain *some* leftover work before tearing down — leftover
    // tasks model schedules the run never observed.
    let drains = rt.decide(3);
    for _ in 0..drains {
        if !rt.drain_one_main() && !rt.run_one_background() {
            break;
        }
    }
    rt.lifecycle_event(act, LifecycleEvent::Stop);
    rt.lifecycle_event(act, LifecycleEvent::Destroy);
}
