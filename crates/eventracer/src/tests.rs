//! Dynamic-detector tests on the corpus figure apps.

use crate::{detect, EventRacerConfig};
use corpus::figures;

fn thorough() -> EventRacerConfig {
    EventRacerConfig {
        seed: 7,
        runs: 6,
        steps_per_episode: 60,
        activity_coverage: 1.0,
        race_coverage_filter: true,
    }
}

#[test]
fn detects_figure_1_race_with_good_coverage() {
    let (app, _) = figures::intra_component();
    let report = detect(&app, &thorough());
    assert!(
        report
            .race_groups()
            .iter()
            .any(|(c, f)| c.ends_with("$Adapter") && f == "data"),
        "adapter.data race should surface dynamically: {:?}",
        report.race_groups()
    );
    assert!(report.events > 10);
}

#[test]
fn race_coverage_filter_hides_guard_flag_races() {
    let (app, _) = figures::open_sudoku_guard();
    let filtered = detect(&app, &thorough());
    assert!(
        !filtered
            .race_groups()
            .iter()
            .any(|(_, f)| f == "mAccumTime"),
        "primitive-guarded accesses are filtered: {:?}",
        filtered.race_groups()
    );

    let unfiltered = detect(
        &app,
        &EventRacerConfig {
            race_coverage_filter: false,
            ..thorough()
        },
    );
    assert!(
        unfiltered.races.len() >= filtered.races.len(),
        "the filter only removes races"
    );
    assert!(
        filtered.filtered > 0,
        "some candidates must have been filtered"
    );
}

#[test]
fn pointer_guard_race_survives_the_filter_as_a_false_positive() {
    // The NullGuard idiom: SIERRA refutes the payload pair via path
    // conditions; EventRacer's primitive-only filter cannot, so it reports
    // it (the §6.4 false-positive class).
    let mut app = android_model::AndroidAppBuilder::new("NullGuardApp");
    let mut truth = corpus::GroundTruth::new();
    corpus::Idiom::NullGuard.plant(&mut app, "com.example.Guarded", &mut truth);
    let app = app.finish().unwrap();

    let report = detect(&app, &thorough());
    assert!(
        report.race_groups().iter().any(|(_, f)| f == "payload"),
        "pointer-guarded pair must be reported dynamically: {:?}",
        report.race_groups()
    );

    // And SIERRA refutes the same pair.
    let result = sierra_core::Sierra::new().analyze_app({
        let mut app2 = android_model::AndroidAppBuilder::new("NullGuardApp2");
        let mut t2 = corpus::GroundTruth::new();
        corpus::Idiom::NullGuard.plant(&mut app2, "com.example.Guarded", &mut t2);
        app2.finish().unwrap()
    });
    let reported: Vec<String> = result
        .races
        .iter()
        .map(|r| result.harness.app.program.field_name(r.field).to_owned())
        .collect();
    assert!(
        !reported.contains(&"payload".to_owned()),
        "SIERRA refutes it: {reported:?}"
    );
}

#[test]
fn eventracer_reports_lifecycle_ordered_pairs_sierra_rules_out() {
    // ordered_lifecycle: onCreate write vs onResume read. EventRacer has no
    // lifecycle model, so the events are unordered in its HB — a false
    // positive SIERRA's rule 2 eliminates (the 15-races discussion, §6.4).
    let mut app = android_model::AndroidAppBuilder::new("OrderedApp");
    let mut truth = corpus::GroundTruth::new();
    corpus::Idiom::OrderedLifecycle.plant(&mut app, "com.example.Ordered", &mut truth);
    let app = app.finish().unwrap();
    let report = detect(&app, &thorough());
    assert!(
        report.race_groups().iter().any(|(_, f)| f == "cfg"),
        "EventRacer lacks the lifecycle HB model: {:?}",
        report.race_groups()
    );
}

#[test]
fn limited_coverage_misses_races() {
    let (app, truth) = figures::intra_component();
    let sparse = EventRacerConfig {
        seed: 3,
        runs: 1,
        steps_per_episode: 2,
        activity_coverage: 0.0,
        race_coverage_filter: true,
    };
    let report = detect(&app, &sparse);
    let groups = report.race_groups();
    let eval = truth.evaluate(groups.iter().map(|(c, f)| (c.as_str(), f.as_str())));
    assert_eq!(eval.true_races, 0, "nothing explored, nothing found");
    assert!(eval.missed > 0, "the planted race goes undetected");
}

#[test]
fn detection_is_deterministic_for_a_seed() {
    let (app, _) = figures::inter_component();
    let a = detect(&app, &thorough());
    let b = detect(&app, &thorough());
    assert_eq!(a.race_groups(), b.race_groups());
    assert_eq!(a.events, b.events);
}
