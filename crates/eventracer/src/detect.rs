//! Dynamic happens-before race detection and the race-coverage filter.

use crate::runtime::{DynLoc, Trace};
use android_model::AndroidApp;
use apir::{local_defs, Dominators, Operand, Stmt, StmtAddr, Terminator};
use std::collections::{HashMap, HashSet};

/// One dynamic race, keyed by the racy field.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DynamicRace {
    /// Declaring class of the field.
    pub class: String,
    /// Field name.
    pub field: String,
    /// The two access sites witnessed.
    pub sites: (StmtAddr, StmtAddr),
}

/// Computes the reachability closure over the trace's causal edges:
/// `ancestors[e]` is the set of events that happen-before `e`.
pub fn hb_ancestors(trace: &Trace) -> Vec<HashSet<usize>> {
    hb_closure(trace)
}

/// Computes the reachability closure over the trace's causal edges.
fn hb_closure(trace: &Trace) -> Vec<HashSet<usize>> {
    let n = trace.events.len();
    // ancestors[e] = set of events that happen-before e.
    let mut ancestors: Vec<HashSet<usize>> = vec![HashSet::new(); n];
    for e in 0..n {
        for &p in &trace.events[e].preds {
            let pa: Vec<usize> = ancestors[p].iter().copied().collect();
            ancestors[e].insert(p);
            ancestors[e].extend(pa);
        }
    }
    ancestors
}

/// Detects unordered conflicting access pairs in a trace.
///
/// With `race_coverage_filter`, races where either access site is guarded
/// by a branch on a *primitive-typed* field are filtered — EventRacer's
/// race-coverage heuristic, which (per §6.4) cannot reason about
/// pointer-null guards and therefore reports those as (false-positive)
/// races.
pub fn detect_races(
    app: &AndroidApp,
    trace: &Trace,
    race_coverage_filter: bool,
) -> (Vec<DynamicRace>, usize) {
    let ancestors = hb_closure(trace);
    let ordered = |a: usize, b: usize| ancestors[b].contains(&a) || ancestors[a].contains(&b);

    // Group accesses by location.
    let mut by_loc: HashMap<DynLoc, Vec<(usize, bool, StmtAddr)>> = HashMap::new();
    for (e, ev) in trace.events.iter().enumerate() {
        for a in &ev.accesses {
            let entry = by_loc.entry(a.loc).or_default();
            // Deduplicate repeated identical accesses within one event.
            if !entry
                .iter()
                .any(|&(ee, w, ad)| ee == e && w == a.is_write && ad == a.addr)
            {
                entry.push((e, a.is_write, a.addr));
            }
        }
    }

    let mut races: HashSet<DynamicRace> = HashSet::new();
    let mut filtered = 0usize;
    let mut guard_cache: HashMap<StmtAddr, bool> = HashMap::new();
    for (loc, accs) in &by_loc {
        let field = match loc {
            DynLoc::Field(_, f) | DynLoc::Static(f) => *f,
        };
        for i in 0..accs.len() {
            for j in i + 1..accs.len() {
                let (e1, w1, a1) = accs[i];
                let (e2, w2, a2) = accs[j];
                if e1 == e2 || !(w1 || w2) || ordered(e1, e2) {
                    continue;
                }
                let fdecl = app.program.field(field);
                let race = DynamicRace {
                    class: app.program.class_name(fdecl.class).to_owned(),
                    field: app.program.name(fdecl.name).to_owned(),
                    sites: if a1 <= a2 { (a1, a2) } else { (a2, a1) },
                };
                if races.contains(&race) {
                    continue;
                }
                if race_coverage_filter {
                    let g1 = *guard_cache
                        .entry(a1)
                        .or_insert_with(|| primitive_guarded(app, a1));
                    let g2 = *guard_cache
                        .entry(a2)
                        .or_insert_with(|| primitive_guarded(app, a2));
                    if g1 || g2 {
                        filtered += 1;
                        continue;
                    }
                }
                races.insert(race);
            }
        }
    }
    let mut out: Vec<DynamicRace> = races.into_iter().collect();
    out.sort_by(|a, b| (&a.class, &a.field, a.sites).cmp(&(&b.class, &b.field, b.sites)));
    (out, filtered)
}

/// Whether the access at `addr` is dominated by a branch whose condition
/// traces back to a *primitive-typed* field — the only guards EventRacer's
/// race coverage reasons about.
fn primitive_guarded(app: &AndroidApp, addr: StmtAddr) -> bool {
    let method = app.program.method(addr.method);
    if !method.has_body() {
        return false;
    }
    let dom = Dominators::compute(method);
    // Walk the dominator chain; inspect each dominating block's If.
    let mut block = addr.block;
    loop {
        let idom = match dom.idom(block) {
            Some(b) if b != block => b,
            _ => return false,
        };
        if let Terminator::If { cond, .. } = &method.block(idom).terminator {
            if let Some(field) = guard_field(app, method, idom, *cond) {
                if app.program.field(field).ty.is_primitive() {
                    return true;
                }
            }
        }
        block = idom;
    }
}

/// Traces a branch condition operand to the field it tests, if any.
fn guard_field(
    _app: &AndroidApp,
    method: &apir::Method,
    block: apir::BlockId,
    cond: Operand,
) -> Option<apir::FieldId> {
    let at = StmtAddr::new(method.id, block, method.block(block).stmts.len() as u32);
    let local = cond.as_local()?;
    let (def_addr, def) = local_defs::find_def(method, at, local)?;
    match def {
        // `if (flag)` — the condition is a field load directly.
        Stmt::Load { field, .. } | Stmt::StaticLoad { field, .. } => Some(*field),
        // `if (x == c)` / `if (x != null)` — one comparison side loads a field.
        Stmt::BinOp { lhs, rhs, .. } => [*lhs, *rhs].into_iter().find_map(|side| {
            let l = side.as_local()?;
            match local_defs::find_def(method, def_addr, l)?.1 {
                Stmt::Load { field, .. } | Stmt::StaticLoad { field, .. } => Some(*field),
                _ => None,
            }
        }),
        _ => None,
    }
}
