//! Choice sources: random vs. scripted schedules.
//!
//! Every nondeterministic decision the interpreter and driver make (which
//! event to deliver, which queue to drain, which `nondet` arm to take)
//! goes through a [`Decider`]. A [`RandomDecider`] reproduces the classic
//! random-testing baseline; a [`ScriptedDecider`] replays a fixed choice
//! prefix and logs every decision point, which is what the systematic
//! explorer (`crate::systematic`) enumerates.

use sierra_prng::SplitMix64;

/// A source of bounded nondeterministic choices.
pub trait Decider {
    /// Picks a value in `0..arity` (`arity ≥ 1`).
    fn pick(&mut self, arity: usize) -> usize;
}

/// Seeded pseudo-random choices.
#[derive(Debug)]
pub struct RandomDecider {
    rng: SplitMix64,
}

impl RandomDecider {
    /// Creates a decider from a seed.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: SplitMix64::new(seed),
        }
    }
}

impl Decider for RandomDecider {
    fn pick(&mut self, arity: usize) -> usize {
        debug_assert!(arity >= 1);
        if arity <= 1 {
            0
        } else {
            self.rng.usize(arity)
        }
    }
}

/// Replays a fixed prefix of choices, defaulting to 0 beyond it, and logs
/// `(arity, choice)` for every decision point.
#[derive(Debug, Default)]
pub struct ScriptedDecider {
    script: Vec<usize>,
    cursor: usize,
    /// The realized decision log: `(arity, chosen)` per decision point.
    pub log: Vec<(usize, usize)>,
}

impl ScriptedDecider {
    /// Creates a decider replaying `script`.
    pub fn new(script: Vec<usize>) -> Self {
        Self {
            script,
            cursor: 0,
            log: Vec::new(),
        }
    }
}

impl Decider for ScriptedDecider {
    fn pick(&mut self, arity: usize) -> usize {
        debug_assert!(arity >= 1);
        let scripted = self.script.get(self.cursor).copied().unwrap_or(0);
        self.cursor += 1;
        let choice = scripted.min(arity.saturating_sub(1));
        self.log.push((arity, choice));
        choice
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_decider_is_seed_deterministic_and_in_range() {
        let mut a = RandomDecider::new(9);
        let mut b = RandomDecider::new(9);
        for arity in [1usize, 2, 3, 7, 100] {
            let x = a.pick(arity);
            assert_eq!(x, b.pick(arity));
            assert!(x < arity);
        }
    }

    #[test]
    fn scripted_decider_replays_then_defaults_and_logs() {
        let mut d = ScriptedDecider::new(vec![2, 5]);
        assert_eq!(d.pick(4), 2);
        assert_eq!(d.pick(3), 2, "out-of-range script entries clamp");
        assert_eq!(d.pick(9), 0, "beyond the script, default to 0");
        assert_eq!(d.log, vec![(4, 2), (3, 2), (9, 0)]);
    }
}
