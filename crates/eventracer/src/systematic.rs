//! Systematic (stateless-model-checking style) schedule exploration.
//!
//! §6.4's discussion of dynamic detectors hinges on "efficient ways to
//! explore schedules": random walks revisit the same interleavings and
//! miss rare ones. This module enumerates schedules *deterministically* by
//! treating every runtime decision point as a branching choice: a run is a
//! script of choices, and after each run every prefix of its realized
//! decision log spawns the next unexplored sibling choice (the classic
//! stateless-search frontier), bounded by a run budget.
//!
//! Compared with random testing under the same budget, systematic
//! exploration finds a superset of races on small apps because it never
//! replays an already-seen schedule.

use crate::detect::{detect_races, DynamicRace};
use crate::driver::explore_scripted;
use crate::EventRacerReport;
use android_model::AndroidApp;
use std::collections::{HashSet, VecDeque};

/// Budget for the systematic explorer.
#[derive(Debug, Clone, Copy)]
pub struct SystematicConfig {
    /// Maximum schedules to execute.
    pub max_runs: usize,
    /// Steps per activity episode (smaller than random testing's — the
    /// point is depth-bounded completeness, not length).
    pub steps_per_episode: usize,
    /// Only branch on the first `branch_depth` decision points of a run
    /// (depth bounding keeps the frontier tractable).
    pub branch_depth: usize,
    /// Apply EventRacer's race-coverage filter to the reported races.
    pub race_coverage_filter: bool,
}

impl Default for SystematicConfig {
    fn default() -> Self {
        Self {
            max_runs: 128,
            steps_per_episode: 6,
            branch_depth: 24,
            race_coverage_filter: true,
        }
    }
}

/// Runs the systematic explorer, unioning races across all schedules.
pub fn detect_systematic(app: &AndroidApp, config: &SystematicConfig) -> EventRacerReport {
    let mut races: HashSet<DynamicRace> = HashSet::new();
    let mut filtered = 0usize;
    let mut events = 0usize;

    // Breadth-first over script prefixes: short prefixes (early schedule
    // divergences) are the high-value ones under a small run budget.
    let mut frontier: VecDeque<Vec<usize>> = VecDeque::from([Vec::new()]);
    let mut visited: HashSet<Vec<usize>> = HashSet::new();
    let mut runs = 0usize;
    while let Some(script) = frontier.pop_front() {
        if runs >= config.max_runs {
            break;
        }
        if !visited.insert(script.clone()) {
            continue;
        }
        runs += 1;
        let (trace, log) = explore_scripted(app, script.clone(), config.steps_per_episode);
        events += trace.events.len();
        let (found, f) = detect_races(app, &trace, config.race_coverage_filter);
        filtered += f;
        races.extend(found);

        // Expand: for each decision point within the branch depth (and at
        // or past the script prefix — earlier points were already fixed),
        // schedule every unexplored sibling choice.
        for (i, &(arity, chosen)) in log.iter().enumerate().take(config.branch_depth) {
            if i < script.len() {
                continue; // fixed by this script's prefix
            }
            let prefix: Vec<usize> = log[..i].iter().map(|&(_, c)| c).collect();
            for alt in 0..arity {
                if alt == chosen {
                    continue;
                }
                let mut next = prefix.clone();
                next.push(alt);
                if !visited.contains(&next) {
                    frontier.push_back(next);
                }
            }
        }
    }

    let mut out: Vec<DynamicRace> = races.into_iter().collect();
    out.sort_by(|a, b| (&a.class, &a.field, a.sites).cmp(&(&b.class, &b.field, b.sites)));
    EventRacerReport {
        races: out,
        filtered,
        events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EventRacerConfig;

    #[test]
    fn systematic_exploration_is_deterministic() {
        let (app, _) = corpus::figures::intra_component();
        let cfg = SystematicConfig::default();
        let a = detect_systematic(&app, &cfg);
        let b = detect_systematic(&app, &cfg);
        assert_eq!(a.race_groups(), b.race_groups());
        assert_eq!(a.events, b.events);
    }

    #[test]
    fn finds_the_figure_1_race_within_a_small_budget() {
        let (app, _) = corpus::figures::intra_component();
        // The racy interleaving is five decisions deep (click → run the
        // background task → scroll); breadth-first needs a few hundred
        // sub-millisecond runs to reach it.
        let report = detect_systematic(
            &app,
            &SystematicConfig {
                max_runs: 2500,
                steps_per_episode: 6,
                ..Default::default()
            },
        );
        assert!(
            report
                .race_groups()
                .iter()
                .any(|(c, f)| c.ends_with("$Adapter") && f == "data"),
            "{:?}",
            report.race_groups()
        );
    }

    #[test]
    fn beats_random_testing_under_an_equal_event_budget() {
        // On the inter-component app, systematic exploration under a small
        // budget must find at least as many race groups as a single random
        // run of comparable size.
        let (app, _) = corpus::figures::inter_component();
        let systematic = detect_systematic(
            &app,
            &SystematicConfig {
                max_runs: 64,
                steps_per_episode: 6,
                ..Default::default()
            },
        );
        let random = crate::detect(
            &app,
            &EventRacerConfig {
                seed: 11,
                runs: 1,
                steps_per_episode: 6,
                activity_coverage: 1.0,
                race_coverage_filter: true,
            },
        );
        assert!(
            systematic.race_groups().len() >= random.race_groups().len(),
            "systematic {:?} vs random {:?}",
            systematic.race_groups(),
            random.race_groups()
        );
    }

    #[test]
    fn run_budget_bounds_the_search() {
        let (app, _) = corpus::figures::intra_component();
        let small = detect_systematic(
            &app,
            &SystematicConfig {
                max_runs: 2,
                ..Default::default()
            },
        );
        let large = detect_systematic(
            &app,
            &SystematicConfig {
                max_runs: 32,
                ..Default::default()
            },
        );
        assert!(large.events >= small.events);
        assert!(large.race_groups().len() >= small.race_groups().len());
    }
}
