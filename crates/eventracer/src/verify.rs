//! Dynamic verification of statically-reported races.
//!
//! §6.4 closes with: "Static and dynamic race detection could also be
//! combined: the static approach can find over-approximate candidate races
//! which the dynamic approach (e.g., deterministic replay) can then
//! verify." This module is that combination: given a race report's
//! `(class, field)` group, it explores schedules until a trace *witnesses*
//! the race — both accesses observed in causally-unordered events — or the
//! attempt budget runs out.
//!
//! A `Confirmed` verdict upgrades a static report to an observed race; a
//! `NotObserved` verdict does not refute it (dynamic absence is exactly
//! the coverage gap the paper's §6.4 quantifies) but tells the developer
//! the schedule is hard to reach.

use crate::driver::{explore, DriverConfig};
use android_model::AndroidApp;

/// Verification budget.
#[derive(Debug, Clone, Copy)]
pub struct VerifyConfig {
    /// Base RNG seed.
    pub seed: u64,
    /// Maximum schedules to explore.
    pub attempts: usize,
    /// Random steps per activity episode in each schedule.
    pub steps_per_episode: usize,
}

impl Default for VerifyConfig {
    fn default() -> Self {
        Self {
            seed: 0xC0FFEE,
            attempts: 12,
            steps_per_episode: 40,
        }
    }
}

/// The verification verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The race was witnessed dynamically.
    Confirmed {
        /// 1-based index of the first confirming schedule.
        schedule: usize,
    },
    /// No explored schedule witnessed the race (not a refutation).
    NotObserved {
        /// Schedules explored.
        attempts: usize,
    },
}

impl Verdict {
    /// Whether the race was confirmed.
    pub fn confirmed(self) -> bool {
        matches!(self, Verdict::Confirmed { .. })
    }
}

/// Attempts to dynamically confirm a race on `(class, field)`.
///
/// Confirmation follows the paper's true-positive criterion (§5): the same
/// pair of access sites must be witnessed unordered in **both execution
/// orders** across the explored schedules. A guard-protected pair (Figure
/// 8) executes in only one order — the guard suppresses the other — so it
/// is never confirmed, agreeing with the static refutation.
///
/// The race-coverage filter plays no role here: the question is whether
/// the *accesses* can race, not whether EventRacer's heuristics would
/// report them.
pub fn verify_race(app: &AndroidApp, class: &str, field: &str, config: VerifyConfig) -> Verdict {
    use crate::detect::hb_ancestors;
    use crate::runtime::DynLoc;
    use std::collections::{HashMap, HashSet};

    let Some(class_id) = app.program.class_by_name(class) else {
        return Verdict::NotObserved { attempts: 0 };
    };
    let Some(field_id) = app.program.declared_field(class_id, field) else {
        return Verdict::NotObserved { attempts: 0 };
    };

    // Site pair → the execution orders witnessed so far (+1 / −1).
    let mut orders: HashMap<(apir::StmtAddr, apir::StmtAddr), HashSet<i8>> = HashMap::new();
    for attempt in 0..config.attempts {
        let trace = explore(
            app,
            DriverConfig {
                seed: config
                    .seed
                    .wrapping_add((attempt as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                steps_per_episode: config.steps_per_episode,
                activity_coverage: 1.0,
            },
        );
        let ancestors = hb_ancestors(&trace);
        // Accesses on the field, grouped per concrete location.
        let mut by_loc: HashMap<DynLoc, Vec<(usize, bool, apir::StmtAddr)>> = HashMap::new();
        for (e, ev) in trace.events.iter().enumerate() {
            for a in &ev.accesses {
                let f = match a.loc {
                    DynLoc::Field(_, f) | DynLoc::Static(f) => f,
                };
                if f == field_id {
                    by_loc
                        .entry(a.loc)
                        .or_default()
                        .push((e, a.is_write, a.addr));
                }
            }
        }
        for accs in by_loc.values() {
            for i in 0..accs.len() {
                for j in 0..accs.len() {
                    let (e1, w1, a1) = accs[i];
                    let (e2, w2, a2) = accs[j];
                    if e1 >= e2 || !(w1 || w2) {
                        continue;
                    }
                    if ancestors[e2].contains(&e1) || ancestors[e1].contains(&e2) {
                        continue; // causally ordered — not a racing pair
                    }
                    // Normalize the site pair; record which side ran first.
                    let (key, dir) = if a1 <= a2 {
                        ((a1, a2), 1i8)
                    } else {
                        ((a2, a1), -1i8)
                    };
                    let seen = orders.entry(key).or_default();
                    seen.insert(dir);
                    if seen.len() == 2 {
                        return Verdict::Confirmed {
                            schedule: attempt + 1,
                        };
                    }
                }
            }
        }
    }
    Verdict::NotObserved {
        attempts: config.attempts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confirms_the_figure_1_race() {
        let (app, _) = corpus::figures::intra_component();
        let v = verify_race(
            &app,
            "com.example.NewsActivity$Adapter",
            "data",
            VerifyConfig::default(),
        );
        assert!(v.confirmed(), "{v:?}");
    }

    #[test]
    fn confirms_the_inter_component_race() {
        let (app, _) = corpus::figures::inter_component();
        let v = verify_race(
            &app,
            "com.example.MainActivity$DB",
            "isOpen",
            VerifyConfig::default(),
        );
        assert!(v.confirmed(), "{v:?}");
    }

    #[test]
    fn does_not_observe_nonexistent_races() {
        let (app, _) = corpus::figures::intra_component();
        let v = verify_race(
            &app,
            "com.example.NewsActivity",
            "no_such_field",
            VerifyConfig {
                attempts: 3,
                steps_per_episode: 10,
                ..Default::default()
            },
        );
        assert!(!v.confirmed(), "{v:?}");
    }

    #[test]
    fn one_shot_guarded_pair_is_never_confirmed() {
        // A one-shot guard: onCreate sets the flag once and posts a guarded
        // writer; onPause clears the flag and writes. Once the clear runs,
        // the guarded write can never execute again — only one execution
        // order is witnessable, so the pair is not confirmed. (This is the
        // dynamic mirror of the Figure 8 refutation; the *re-arming* timer
        // of Figure 8 itself is dynamically racy across resume cycles.)
        use android_model::AndroidAppBuilder;
        use apir::{ConstValue, InvokeKind, Operand, Type};
        let mut app = AndroidAppBuilder::new("OneShot");
        let fw = app.framework().clone();
        let mut cb = app.activity("Act");
        let flag = cb.field("flag", Type::Bool);
        let slot = cb.field("slot", Type::Int);
        let activity = cb.build();
        let mut cb = app.subclass("W", fw.object);
        cb.add_interface(fw.runnable);
        let outer = cb.field("outer", Type::Ref(activity));
        let w = cb.build();
        let mut mb = app.method(w, "<init>");
        mb.set_param_count(2);
        let (this, o) = (mb.param(0), mb.param(1));
        mb.store(this, outer, Operand::Local(o));
        mb.ret(None);
        let w_init = mb.finish();
        let mut mb = app.method(w, "run");
        mb.set_param_count(1);
        let this = mb.param(0);
        let (o, t) = (mb.fresh_local(), mb.fresh_local());
        mb.load(o, this, outer);
        mb.load(t, o, flag);
        let b_then = mb.new_block();
        let b_exit = mb.new_block();
        mb.if_(t, b_then, b_exit);
        mb.switch_to(b_then);
        mb.store(o, slot, Operand::Const(ConstValue::Int(1)));
        mb.goto(b_exit);
        mb.switch_to(b_exit);
        mb.ret(None);
        mb.finish();
        let mut mb = app.method(activity, "onCreate");
        mb.set_param_count(1);
        let this = mb.param(0);
        let r = mb.fresh_local();
        mb.store(this, flag, Operand::Const(ConstValue::Bool(true)));
        mb.new_(r, w);
        mb.call(
            None,
            InvokeKind::Special,
            w_init,
            Some(r),
            vec![Operand::Local(this)],
        );
        mb.call(
            None,
            InvokeKind::Virtual,
            fw.run_on_ui_thread,
            Some(this),
            vec![Operand::Local(r)],
        );
        mb.ret(None);
        mb.finish();
        let mut mb = app.method(activity, "onPause");
        mb.set_param_count(1);
        let this = mb.param(0);
        let t = mb.fresh_local();
        mb.load(t, this, flag);
        let b_then = mb.new_block();
        let b_exit = mb.new_block();
        mb.if_(t, b_then, b_exit);
        mb.switch_to(b_then);
        mb.store(this, flag, Operand::Const(ConstValue::Bool(false)));
        mb.store(this, slot, Operand::Const(ConstValue::Int(2)));
        mb.goto(b_exit);
        mb.switch_to(b_exit);
        mb.ret(None);
        mb.finish();
        let app = app.finish().unwrap();

        let v = verify_race(
            &app,
            "Act",
            "slot",
            VerifyConfig {
                attempts: 10,
                ..Default::default()
            },
        );
        assert!(!v.confirmed(), "{v:?}");
    }
}
