//! # eventracer — the dynamic event-race detector baseline (§6.4)
//!
//! A model of EventRacer Android, the state-of-the-art dynamic detector the
//! paper compares against. It consists of:
//!
//! - a concrete **event-driven interpreter** for `apir` apps
//!   ([`runtime`]): a main looper, background threads, listener/receiver
//!   registries, and a trace of per-event memory accesses with causal
//!   (post/fork) edges;
//! - a random **exploration driver** ([`explore`]) with bounded steps and
//!   imperfect screen coverage — the source of dynamic false negatives;
//! - **happens-before race detection** over the trace ([`detect_races`]),
//!   including EventRacer's *race coverage* filter, which only reasons
//!   about primitive-typed guards. Pointer-null guarded pairs therefore
//!   survive as the false positives §6.4 describes (102 of 182 reports),
//!   while guard-flag races get filtered away (missed true races).
//!
//! ```no_run
//! use android_model::AndroidAppBuilder;
//! use eventracer::{detect, EventRacerConfig};
//!
//! let app = AndroidAppBuilder::new("Demo").finish().expect("valid");
//! let report = detect(&app, &EventRacerConfig::default());
//! println!("{} dynamic races in {} events", report.races.len(), report.events);
//! ```

mod decide;
mod detect;
mod driver;
pub mod runtime;
pub mod systematic;
pub mod verify;

pub use decide::{Decider, RandomDecider, ScriptedDecider};
pub use detect::{detect_races, hb_ancestors, DynamicRace};
pub use driver::{explore, explore_scripted, DriverConfig};
pub use runtime::{Trace, Value};
pub use systematic::{detect_systematic, SystematicConfig};
pub use verify::{verify_race, Verdict, VerifyConfig};

use android_model::AndroidApp;
use std::collections::HashSet;

/// Configuration of a dynamic detection session.
#[derive(Debug, Clone, Copy)]
pub struct EventRacerConfig {
    /// Base RNG seed.
    pub seed: u64,
    /// Number of independent exploration runs (results are unioned).
    pub runs: usize,
    /// Random steps per activity episode.
    pub steps_per_episode: usize,
    /// Probability of visiting each activity.
    pub activity_coverage: f64,
    /// Enable the race-coverage filter.
    pub race_coverage_filter: bool,
}

impl Default for EventRacerConfig {
    fn default() -> Self {
        Self {
            seed: 42,
            runs: 1,
            steps_per_episode: 14,
            activity_coverage: 0.45,
            race_coverage_filter: true,
        }
    }
}

/// The detection result across all runs.
#[derive(Debug, Clone)]
pub struct EventRacerReport {
    /// Distinct dynamic races (after the race-coverage filter).
    pub races: Vec<DynamicRace>,
    /// Candidate races removed by the race-coverage filter.
    pub filtered: usize,
    /// Total events executed across runs.
    pub events: usize,
}

impl EventRacerReport {
    /// Distinct `(class, field)` race groups (for ground-truth scoring).
    pub fn race_groups(&self) -> Vec<(String, String)> {
        let set: HashSet<(String, String)> = self
            .races
            .iter()
            .map(|r| (r.class.clone(), r.field.clone()))
            .collect();
        let mut v: Vec<_> = set.into_iter().collect();
        v.sort();
        v
    }
}

/// Runs the dynamic detector on `app`.
pub fn detect(app: &AndroidApp, config: &EventRacerConfig) -> EventRacerReport {
    let mut races: HashSet<DynamicRace> = HashSet::new();
    let mut filtered = 0;
    let mut events = 0;
    for run in 0..config.runs {
        let trace = explore(
            app,
            DriverConfig {
                seed: config.seed.wrapping_add(run as u64 * 0x9E37_79B9),
                steps_per_episode: config.steps_per_episode,
                activity_coverage: config.activity_coverage,
            },
        );
        events += trace.events.len();
        let (found, f) = detect_races(app, &trace, config.race_coverage_filter);
        filtered += f;
        races.extend(found);
    }
    let mut out: Vec<DynamicRace> = races.into_iter().collect();
    out.sort_by(|a, b| (&a.class, &a.field, a.sites).cmp(&(&b.class, &b.field, b.sites)));
    EventRacerReport {
        races: out,
        filtered,
        events,
    }
}

#[cfg(test)]
mod tests;
