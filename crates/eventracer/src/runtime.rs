//! A concrete event-driven interpreter for `apir` Android apps.
//!
//! This is the execution substrate of the dynamic baseline: apps run under
//! a simulated main looper plus background threads, driven by a random
//! environment (lifecycle transitions, GUI events, broadcasts). Every
//! callback invocation executes atomically as one *event*; the trace
//! records each event's memory accesses and the causal (post/fork) edges
//! between events.

use crate::decide::Decider;
use android_model::{AndroidApp, FrameworkOp, GuiEventKind, LifecycleEvent};
use apir::{
    BinOp, ClassId, CmpOp, ConstValue, FieldId, InvokeKind, MethodId, Operand, Stmt, StmtAddr,
    Terminator, UnOp,
};
use std::collections::{HashMap, VecDeque};

/// A runtime value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Value {
    /// Integer.
    Int(i64),
    /// Boolean.
    Bool(bool),
    /// Interned string.
    Str(apir::Symbol),
    /// Null reference.
    Null,
    /// Heap reference.
    Ref(usize),
}

impl Value {
    fn truthy(self) -> bool {
        matches!(self, Value::Bool(true))
    }
}

/// A concrete memory location.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DynLoc {
    /// Instance field of a heap object.
    Field(usize, FieldId),
    /// Static field.
    Static(FieldId),
}

/// One recorded access.
#[derive(Debug, Clone, Copy)]
pub struct AccessRec {
    /// The location touched.
    pub loc: DynLoc,
    /// Whether it was a write.
    pub is_write: bool,
    /// The accessing statement.
    pub addr: StmtAddr,
}

/// One executed event (an atomic callback invocation).
#[derive(Debug, Clone)]
pub struct EventRec {
    /// Human-readable label (for debugging).
    pub label: String,
    /// Causal predecessors (post/fork edges).
    pub preds: Vec<usize>,
    /// The accesses performed.
    pub accesses: Vec<AccessRec>,
}

/// The full execution trace.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Executed events in execution order.
    pub events: Vec<EventRec>,
}

#[derive(Debug, Clone)]
struct PendingTask {
    decl: MethodId,
    receiver: Value,
    args: Vec<Value>,
    poster: Option<usize>,
    label: String,
    /// A task to enqueue on the main queue when this one finishes
    /// (AsyncTask's `onPostExecute`).
    followup: Option<(MethodId, Value, String)>,
}

/// Execution limits for one event.
const STEP_BUDGET: usize = 20_000;
const MAX_CALL_DEPTH: usize = 48;

/// The interpreter and environment state for one execution.
pub struct Runtime<'a, D: Decider> {
    app: &'a AndroidApp,
    heap: Vec<(ClassId, HashMap<FieldId, Value>)>,
    statics: HashMap<FieldId, Value>,
    views: HashMap<(ClassId, i64), usize>,
    listeners: Vec<(GuiEventKind, Value)>,
    receivers: Vec<Value>,
    main_queue: VecDeque<PendingTask>,
    bg_ready: Vec<PendingTask>,
    cur_event: usize,
    /// The trace under construction.
    pub trace: Trace,
    decider: D,
    _marker: std::marker::PhantomData<&'a ()>,
}

impl<'a, D: Decider> Runtime<'a, D> {
    /// Creates a runtime for `app` driven by `decider`.
    pub fn new(app: &'a AndroidApp, decider: D) -> Self {
        Self {
            app,
            heap: Vec::new(),
            statics: HashMap::new(),
            views: HashMap::new(),
            listeners: Vec::new(),
            receivers: Vec::new(),
            main_queue: VecDeque::new(),
            bg_ready: Vec::new(),
            cur_event: 0,
            trace: Trace::default(),
            decider,
            _marker: std::marker::PhantomData,
        }
    }

    /// Tears the runtime down into its trace and decider (the systematic
    /// explorer reads the decision log off the scripted decider).
    pub fn into_parts(self) -> (Trace, D) {
        (self.trace, self.decider)
    }

    /// Draws a bounded nondeterministic choice in `0..arity`.
    pub fn decide(&mut self, arity: usize) -> usize {
        self.decider.pick(arity)
    }

    /// Allocates a heap object.
    pub fn alloc(&mut self, class: ClassId) -> Value {
        self.heap.push((class, HashMap::new()));
        Value::Ref(self.heap.len() - 1)
    }

    /// Number of registered listeners.
    pub fn listener_count(&self) -> usize {
        self.listeners.len()
    }

    /// Number of registered receivers.
    pub fn receiver_count(&self) -> usize {
        self.receivers.len()
    }

    /// Registers a statically-declared (manifest) receiver instance.
    pub fn register_declared_receiver(&mut self, recv: Value) {
        self.receivers.push(recv);
    }

    /// Whether queued work remains.
    pub fn has_pending(&self) -> bool {
        !self.main_queue.is_empty() || !self.bg_ready.is_empty()
    }

    /// Runs a lifecycle callback on `activity` as one event.
    pub fn lifecycle_event(&mut self, activity: Value, ev: LifecycleEvent) {
        let decl = ev.declared_callback(&self.app.framework);
        self.run_event(PendingTask {
            decl,
            receiver: activity,
            args: vec![],
            poster: None,
            label: ev.callback_name().to_owned(),
            followup: None,
        });
    }

    /// Delivers a GUI event to listener index `idx` (from a snapshot).
    pub fn gui_event(&mut self, idx: usize) {
        let Some(&(kind, listener)) = self.listeners.get(idx) else {
            return;
        };
        let decl = kind.interface_method(&self.app.framework);
        let argc = self.app.program.method(decl).param_count.saturating_sub(1) as usize;
        self.run_event(PendingTask {
            decl,
            receiver: listener,
            args: vec![Value::Null; argc],
            poster: None,
            label: kind.callback_name().to_owned(),
            followup: None,
        });
    }

    /// Delivers a broadcast to receiver index `idx`.
    pub fn broadcast(&mut self, idx: usize) {
        let Some(&recv) = self.receivers.get(idx) else {
            return;
        };
        let fw = &self.app.framework;
        let intent = self.alloc(fw.intent);
        let bundle = self.alloc(fw.bundle);
        if let Value::Ref(i) = intent {
            self.heap[i].1.insert(fw.intent_extras, bundle);
        }
        self.run_event(PendingTask {
            decl: fw.on_receive,
            receiver: recv,
            args: vec![intent],
            poster: None,
            label: "onReceive".to_owned(),
            followup: None,
        });
    }

    /// Executes the next main-looper task, if any.
    pub fn drain_one_main(&mut self) -> bool {
        match self.main_queue.pop_front() {
            Some(t) => {
                self.run_event(t);
                true
            }
            None => false,
        }
    }

    /// Executes one ready background task (random pick).
    pub fn run_one_background(&mut self) -> bool {
        if self.bg_ready.is_empty() {
            return false;
        }
        let idx = self.decide(self.bg_ready.len());
        let t = self.bg_ready.swap_remove(idx);
        self.run_event(t);
        true
    }

    // ---- event execution ----

    fn run_event(&mut self, task: PendingTask) {
        let id = self.trace.events.len();
        self.trace.events.push(EventRec {
            label: task.label.clone(),
            preds: task.poster.into_iter().collect(),
            accesses: Vec::new(),
        });
        self.cur_event = id;
        let mut budget = STEP_BUDGET;
        self.invoke_virtual(task.decl, task.receiver, &task.args, 0, &mut budget);
        if let Some((decl, recv, label)) = task.followup {
            self.main_queue.push_back(PendingTask {
                decl,
                receiver: recv,
                args: vec![],
                poster: Some(id),
                label,
                followup: None,
            });
        }
    }

    fn invoke_virtual(
        &mut self,
        decl: MethodId,
        receiver: Value,
        args: &[Value],
        depth: usize,
        budget: &mut usize,
    ) -> Value {
        let Value::Ref(r) = receiver else {
            return Value::Null;
        };
        let class = self.heap[r].0;
        let Some(target) = self.app.program.dispatch(class, decl) else {
            return Value::Null;
        };
        if !self.app.program.method(target).has_body() {
            return Value::Null;
        }
        let mut all = Vec::with_capacity(args.len() + 1);
        all.push(receiver);
        all.extend_from_slice(args);
        self.exec_method(target, &all, depth, budget)
    }

    fn exec_method(
        &mut self,
        method: MethodId,
        args: &[Value],
        depth: usize,
        budget: &mut usize,
    ) -> Value {
        if depth > MAX_CALL_DEPTH {
            return Value::Null;
        }
        let m = self.app.program.method(method).clone();
        let mut locals = vec![Value::Null; m.local_count as usize];
        for (i, v) in args.iter().enumerate().take(m.param_count as usize) {
            locals[i] = *v;
        }
        let mut block = m.entry();
        loop {
            let bb = m.block(block).clone();
            for (i, stmt) in bb.stmts.iter().enumerate() {
                if *budget == 0 {
                    return Value::Null;
                }
                *budget -= 1;
                let addr = StmtAddr::new(method, block, i as u32);
                self.exec_stmt(stmt, addr, &mut locals, depth, budget);
            }
            match &bb.terminator {
                Terminator::Goto(b) => block = *b,
                Terminator::If {
                    cond,
                    then_bb,
                    else_bb,
                } => {
                    let v = self.eval(*cond, &locals);
                    block = if v.truthy() { *then_bb } else { *else_bb };
                }
                Terminator::NonDet(targets) => {
                    if targets.is_empty() {
                        return Value::Null;
                    }
                    let pick = self.decide(targets.len());
                    block = targets[pick];
                }
                Terminator::Return(op) => {
                    return op.map(|o| self.eval(o, &locals)).unwrap_or(Value::Null);
                }
            }
            if *budget == 0 {
                return Value::Null;
            }
        }
    }

    fn eval(&self, op: Operand, locals: &[Value]) -> Value {
        match op {
            Operand::Local(l) => locals[l.0 as usize],
            Operand::Const(c) => match c {
                ConstValue::Int(v) => Value::Int(v),
                ConstValue::Bool(v) => Value::Bool(v),
                ConstValue::Null => Value::Null,
                ConstValue::Str(s) => Value::Str(s),
            },
        }
    }

    fn record(&mut self, loc: DynLoc, is_write: bool, addr: StmtAddr) {
        self.trace.events[self.cur_event].accesses.push(AccessRec {
            loc,
            is_write,
            addr,
        });
    }

    fn exec_stmt(
        &mut self,
        stmt: &Stmt,
        addr: StmtAddr,
        locals: &mut [Value],
        depth: usize,
        budget: &mut usize,
    ) {
        match stmt {
            Stmt::Const { dst, value } => {
                locals[dst.0 as usize] = self.eval(Operand::Const(*value), locals);
            }
            Stmt::Move { dst, src } => locals[dst.0 as usize] = locals[src.0 as usize],
            Stmt::UnOp { dst, op, src } => {
                let v = self.eval(*src, locals);
                locals[dst.0 as usize] = match (op, v) {
                    (UnOp::Not, Value::Bool(b)) => Value::Bool(!b),
                    (UnOp::Neg, Value::Int(i)) => Value::Int(-i),
                    _ => Value::Null,
                };
            }
            Stmt::BinOp { dst, op, lhs, rhs } => {
                let (a, b) = (self.eval(*lhs, locals), self.eval(*rhs, locals));
                locals[dst.0 as usize] = eval_binop(*op, a, b);
            }
            Stmt::New { dst, class, .. } => {
                locals[dst.0 as usize] = self.alloc(*class);
            }
            Stmt::Load { dst, obj, field } => {
                if let Value::Ref(r) = locals[obj.0 as usize] {
                    self.record(DynLoc::Field(r, *field), false, addr);
                    locals[dst.0 as usize] =
                        self.heap[r].1.get(field).copied().unwrap_or(Value::Null);
                } else {
                    locals[dst.0 as usize] = Value::Null;
                }
            }
            Stmt::Store { obj, field, value } => {
                let v = self.eval(*value, locals);
                if let Value::Ref(r) = locals[obj.0 as usize] {
                    self.record(DynLoc::Field(r, *field), true, addr);
                    self.heap[r].1.insert(*field, v);
                }
            }
            Stmt::StaticLoad { dst, field } => {
                self.record(DynLoc::Static(*field), false, addr);
                locals[dst.0 as usize] = self.statics.get(field).copied().unwrap_or(Value::Null);
            }
            Stmt::StaticStore { field, value } => {
                let v = self.eval(*value, locals);
                self.record(DynLoc::Static(*field), true, addr);
                self.statics.insert(*field, v);
            }
            Stmt::Call {
                dst,
                kind,
                callee,
                receiver,
                args,
                ..
            } => {
                let argv: Vec<Value> = args.iter().map(|a| self.eval(*a, locals)).collect();
                let recv = receiver.map(|r| locals[r.0 as usize]);
                let ret = self.exec_call(*kind, *callee, recv, &argv, addr, depth, budget);
                if let Some(d) = dst {
                    locals[d.0 as usize] = ret;
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_call(
        &mut self,
        kind: InvokeKind,
        callee: MethodId,
        receiver: Option<Value>,
        args: &[Value],
        addr: StmtAddr,
        depth: usize,
        budget: &mut usize,
    ) -> Value {
        let fw = &self.app.framework;
        if let Some(op) = FrameworkOp::classify(fw, callee) {
            return self.exec_op(op, receiver, args, addr);
        }
        match kind {
            InvokeKind::Virtual => {
                let recv = receiver.unwrap_or(Value::Null);
                self.invoke_virtual(callee, recv, args, depth + 1, budget)
            }
            InvokeKind::Static | InvokeKind::Special => {
                if !self.app.program.method(callee).has_body() {
                    return Value::Null;
                }
                let mut all = Vec::new();
                if kind == InvokeKind::Special {
                    all.push(receiver.unwrap_or(Value::Null));
                }
                all.extend_from_slice(args);
                self.exec_method(callee, &all, depth + 1, budget)
            }
        }
    }

    fn exec_op(
        &mut self,
        op: FrameworkOp,
        receiver: Option<Value>,
        args: &[Value],
        addr: StmtAddr,
    ) -> Value {
        use FrameworkOp::*;
        let fw = self.app.framework.clone();
        let cur = self.cur_event;
        match op {
            ThreadStart => {
                if let Some(recv) = receiver {
                    self.bg_ready.push(PendingTask {
                        decl: fw.thread_run,
                        receiver: recv,
                        args: vec![],
                        poster: Some(cur),
                        label: "Thread.run".into(),
                        followup: None,
                    });
                }
            }
            AsyncTaskExecute => {
                if let Some(recv) = receiver {
                    self.main_queue.push_back(PendingTask {
                        decl: fw.async_task_on_pre_execute,
                        receiver: recv,
                        args: vec![],
                        poster: Some(cur),
                        label: "onPreExecute".into(),
                        followup: None,
                    });
                    self.bg_ready.push(PendingTask {
                        decl: fw.async_task_do_in_background,
                        receiver: recv,
                        args: vec![],
                        poster: Some(cur),
                        label: "doInBackground".into(),
                        followup: Some((
                            fw.async_task_on_post_execute,
                            recv,
                            "onPostExecute".into(),
                        )),
                    });
                }
            }
            ExecutorExecute => {
                if let Some(&r) = args.first() {
                    self.bg_ready.push(PendingTask {
                        decl: fw.runnable_run,
                        receiver: r,
                        args: vec![],
                        poster: Some(cur),
                        label: "Executor.run".into(),
                        followup: None,
                    });
                }
            }
            HandlerPost | HandlerPostDelayed | ViewPost | ViewPostDelayed | RunOnUiThread => {
                if let Some(&r) = args.first() {
                    self.main_queue.push_back(PendingTask {
                        decl: fw.runnable_run,
                        receiver: r,
                        args: vec![],
                        poster: Some(cur),
                        label: "Runnable.run".into(),
                        followup: None,
                    });
                }
            }
            HandlerSendMessage => {
                if let (Some(recv), Some(&msg)) = (receiver, args.first()) {
                    self.main_queue.push_back(PendingTask {
                        decl: fw.handler_handle_message,
                        receiver: recv,
                        args: vec![msg],
                        poster: Some(cur),
                        label: "handleMessage".into(),
                        followup: None,
                    });
                }
            }
            HandlerSendEmptyMessage => {
                if let Some(recv) = receiver {
                    let msg = self.alloc(fw.message);
                    if let (Value::Ref(i), Some(&what)) = (msg, args.first()) {
                        self.heap[i].1.insert(fw.message_what, what);
                    }
                    self.main_queue.push_back(PendingTask {
                        decl: fw.handler_handle_message,
                        receiver: recv,
                        args: vec![msg],
                        poster: Some(cur),
                        label: "handleMessage".into(),
                        followup: None,
                    });
                }
            }
            RegisterReceiver => {
                if let Some(&r) = args.first() {
                    self.receivers.push(r);
                }
            }
            UnregisterReceiver => {
                if let Some(&r) = args.first() {
                    self.receivers.retain(|&x| x != r);
                }
            }
            AsyncTaskCancel => {
                // Cancellation drops the task's pending background body
                // (and with it the onPostExecute followup) plus any
                // already-scheduled onPostExecute; a queued onPreExecute
                // still runs, as on Android.
                if let Some(recv) = receiver {
                    self.bg_ready.retain(|t| {
                        !(t.receiver == recv && t.decl == fw.async_task_do_in_background)
                    });
                    self.main_queue.retain(|t| {
                        !(t.receiver == recv && t.decl == fw.async_task_on_post_execute)
                    });
                }
            }
            SetListener(kind) => {
                if let Some(&l) = args.first() {
                    self.listeners.push((kind, l));
                }
            }
            FindViewById => {
                let Some(Value::Ref(r)) = receiver else {
                    return Value::Null;
                };
                let activity_class = self.heap[r].0;
                let Some(&Value::Int(id)) = args.first() else {
                    return Value::Null;
                };
                if let Some(&v) = self.views.get(&(activity_class, id)) {
                    return Value::Ref(v);
                }
                let class = i32::try_from(id)
                    .ok()
                    .and_then(|i| self.app.view_class(activity_class, i))
                    .unwrap_or(fw.view);
                let v = self.alloc(class);
                if let Value::Ref(h) = v {
                    self.views.insert((activity_class, id), h);
                }
                return v;
            }
            BindService => {
                if let Some(&conn) = args.get(1) {
                    self.main_queue.push_back(PendingTask {
                        decl: fw.on_service_connected,
                        receiver: conn,
                        args: vec![],
                        poster: Some(cur),
                        label: "onServiceConnected".into(),
                        followup: None,
                    });
                }
            }
            TimerSchedule => {
                if let Some(&task) = args.first() {
                    self.bg_ready.push(PendingTask {
                        decl: fw.timer_task_run,
                        receiver: task,
                        args: vec![],
                        poster: Some(cur),
                        label: "TimerTask.run".into(),
                        followup: None,
                    });
                }
            }
            RequestLocationUpdates => {
                if let Some(&l) = args.first() {
                    self.main_queue.push_back(PendingTask {
                        decl: fw.on_location_changed,
                        receiver: l,
                        args: vec![Value::Null],
                        poster: Some(cur),
                        label: "onLocationChanged".into(),
                        followup: None,
                    });
                }
            }
            SetOnCompletionListener => {
                if let Some(&l) = args.first() {
                    self.main_queue.push_back(PendingTask {
                        decl: fw.on_completion,
                        receiver: l,
                        args: vec![Value::Null],
                        poster: Some(cur),
                        label: "onCompletion".into(),
                        followup: None,
                    });
                }
            }
            ArrayListSetAt => {
                if let (Some(Value::Ref(r)), Some(&Value::Int(k)), Some(&v)) =
                    (receiver, args.first(), args.get(1))
                {
                    let field = if (0..8).contains(&k) {
                        fw.index_slots[k as usize]
                    } else {
                        fw.array_list_contents
                    };
                    self.record(DynLoc::Field(r, field), true, addr);
                    self.heap[r].1.insert(field, v);
                }
            }
            ArrayListGetAt => {
                if let (Some(Value::Ref(r)), Some(&Value::Int(k))) = (receiver, args.first()) {
                    let field = if (0..8).contains(&k) {
                        fw.index_slots[k as usize]
                    } else {
                        fw.array_list_contents
                    };
                    self.record(DynLoc::Field(r, field), false, addr);
                    return self.heap[r].1.get(&field).copied().unwrap_or(Value::Null);
                }
            }
            StartService | RemoveUpdates | HandlerInit | GetMainLooper | MyLooper => {}
            // Reflection and intent dispatch are static-soundness-policy
            // concerns; the dynamic replay baseline leaves them inert,
            // matching how intent-driven StartService is handled above.
            ClassForName | ClassNewInstance | MethodInvoke | IntentSetClass | StartActivity
            | SendBroadcast => {}
        }
        Value::Null
    }
}

fn eval_binop(op: BinOp, a: Value, b: Value) -> Value {
    use Value::*;
    match op {
        BinOp::Add => match (a, b) {
            (Int(x), Int(y)) => Int(x + y),
            _ => Null,
        },
        BinOp::Sub => match (a, b) {
            (Int(x), Int(y)) => Int(x - y),
            _ => Null,
        },
        BinOp::Mul => match (a, b) {
            (Int(x), Int(y)) => Int(x * y),
            _ => Null,
        },
        BinOp::Cmp(CmpOp::Eq) => Bool(a == b),
        BinOp::Cmp(CmpOp::Ne) => Bool(a != b),
        BinOp::Cmp(CmpOp::Lt) => match (a, b) {
            (Int(x), Int(y)) => Bool(x < y),
            _ => Bool(false),
        },
        BinOp::Cmp(CmpOp::Le) => match (a, b) {
            (Int(x), Int(y)) => Bool(x <= y),
            _ => Bool(false),
        },
        BinOp::And => match (a, b) {
            (Bool(x), Bool(y)) => Bool(x && y),
            _ => Bool(false),
        },
        BinOp::Or => match (a, b) {
            (Bool(x), Bool(y)) => Bool(x || y),
            _ => Bool(false),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decide::RandomDecider;

    #[test]
    fn binop_evaluation_covers_the_operator_table() {
        use Value::*;
        assert_eq!(eval_binop(BinOp::Add, Int(2), Int(3)), Int(5));
        assert_eq!(eval_binop(BinOp::Sub, Int(2), Int(3)), Int(-1));
        assert_eq!(eval_binop(BinOp::Mul, Int(2), Int(3)), Int(6));
        assert_eq!(eval_binop(BinOp::Add, Int(2), Null), Null);
        assert_eq!(
            eval_binop(BinOp::Cmp(CmpOp::Eq), Ref(1), Ref(1)),
            Bool(true)
        );
        assert_eq!(eval_binop(BinOp::Cmp(CmpOp::Ne), Ref(1), Null), Bool(true));
        assert_eq!(
            eval_binop(BinOp::Cmp(CmpOp::Lt), Int(1), Int(2)),
            Bool(true)
        );
        assert_eq!(
            eval_binop(BinOp::Cmp(CmpOp::Le), Int(2), Int(2)),
            Bool(true)
        );
        assert_eq!(eval_binop(BinOp::And, Bool(true), Bool(false)), Bool(false));
        assert_eq!(eval_binop(BinOp::Or, Bool(true), Bool(false)), Bool(true));
        assert_eq!(eval_binop(BinOp::Cmp(CmpOp::Lt), Null, Int(1)), Bool(false));
    }

    #[test]
    fn lifecycle_event_executes_the_override_and_records_accesses() {
        let mut builder = android_model::AndroidAppBuilder::new("T");
        let fw = builder.framework().clone();
        let mut cb = builder.activity("Main");
        let f = cb.field("x", apir::Type::Int);
        let activity = cb.build();
        let mut mb = builder.method(activity, "onCreate");
        mb.set_param_count(1);
        let this = mb.param(0);
        mb.store(this, f, apir::Operand::Const(ConstValue::Int(7)));
        mb.ret(None);
        mb.finish();
        let app = builder.finish().unwrap();

        let mut rt = Runtime::new(&app, RandomDecider::new(1));
        let act = rt.alloc(activity);
        rt.lifecycle_event(act, android_model::LifecycleEvent::Create);
        assert_eq!(rt.trace.events.len(), 1);
        let ev = &rt.trace.events[0];
        assert_eq!(ev.label, "onCreate");
        assert_eq!(ev.accesses.len(), 1);
        assert!(ev.accesses[0].is_write);
        let _ = fw;
    }

    #[test]
    fn posted_tasks_carry_the_causal_edge() {
        let mut builder = android_model::AndroidAppBuilder::new("T");
        let fw = builder.framework().clone();
        let mut cb = builder.subclass("R", fw.object);
        cb.add_interface(fw.runnable);
        let runnable = cb.build();
        let mut mb = builder.method(runnable, "run");
        mb.set_param_count(1);
        mb.ret(None);
        mb.finish();
        let activity = builder.activity("Main").build();
        let mut mb = builder.method(activity, "onCreate");
        mb.set_param_count(1);
        let this = mb.param(0);
        let r = mb.fresh_local();
        mb.new_(r, runnable);
        mb.call(
            None,
            apir::InvokeKind::Virtual,
            fw.run_on_ui_thread,
            Some(this),
            vec![apir::Operand::Local(r)],
        );
        mb.ret(None);
        mb.finish();
        let app = builder.finish().unwrap();

        let mut rt = Runtime::new(&app, RandomDecider::new(1));
        let act = rt.alloc(activity);
        rt.lifecycle_event(act, android_model::LifecycleEvent::Create);
        assert!(rt.has_pending());
        assert!(rt.drain_one_main());
        assert!(!rt.drain_one_main(), "queue is drained");
        assert_eq!(rt.trace.events.len(), 2);
        assert_eq!(rt.trace.events[1].preds, vec![0], "post edge from onCreate");
    }

    #[test]
    fn listener_registration_feeds_gui_events() {
        let mut builder = android_model::AndroidAppBuilder::new("T");
        let fw = builder.framework().clone();
        let mut cb = builder.activity("Main");
        cb.add_interface(fw.on_click_listener);
        let f = cb.field("clicked", apir::Type::Int);
        let activity = cb.build();
        let mut mb = builder.method(activity, "onClick");
        mb.set_param_count(2);
        let this = mb.param(0);
        mb.store(this, f, apir::Operand::Const(ConstValue::Int(1)));
        mb.ret(None);
        mb.finish();
        let mut mb = builder.method(activity, "onCreate");
        mb.set_param_count(1);
        let this = mb.param(0);
        let v = mb.fresh_local();
        mb.call(
            Some(v),
            apir::InvokeKind::Virtual,
            fw.find_view_by_id,
            Some(this),
            vec![apir::Operand::Const(ConstValue::Int(1))],
        );
        mb.call(
            None,
            apir::InvokeKind::Virtual,
            fw.set_on_click_listener,
            Some(v),
            vec![apir::Operand::Local(this)],
        );
        mb.ret(None);
        mb.finish();
        let app = builder.finish().unwrap();

        let mut rt = Runtime::new(&app, RandomDecider::new(1));
        let act = rt.alloc(activity);
        assert_eq!(rt.listener_count(), 0);
        rt.lifecycle_event(act, android_model::LifecycleEvent::Create);
        assert_eq!(rt.listener_count(), 1);
        rt.gui_event(0);
        assert_eq!(rt.trace.events.len(), 2);
        assert_eq!(rt.trace.events[1].label, "onClick");
        assert!(rt.trace.events[1].accesses.iter().any(|a| a.is_write));
    }

    #[test]
    fn find_view_by_id_returns_a_stable_view_per_id() {
        let mut builder = android_model::AndroidAppBuilder::new("T");
        let fw = builder.framework().clone();
        let activity = builder.activity("Main").build();
        let mut mb = builder.method(activity, "onCreate");
        mb.set_param_count(1);
        let this = mb.param(0);
        let (v1, v2, cond) = (mb.fresh_local(), mb.fresh_local(), mb.fresh_local());
        mb.call(
            Some(v1),
            apir::InvokeKind::Virtual,
            fw.find_view_by_id,
            Some(this),
            vec![apir::Operand::Const(ConstValue::Int(9))],
        );
        mb.call(
            Some(v2),
            apir::InvokeKind::Virtual,
            fw.find_view_by_id,
            Some(this),
            vec![apir::Operand::Const(ConstValue::Int(9))],
        );
        mb.bin_op(
            cond,
            BinOp::Cmp(CmpOp::Eq),
            apir::Operand::Local(v1),
            apir::Operand::Local(v2),
        );
        // Store the comparison result into a static so the test can see it.
        mb.ret(Some(apir::Operand::Local(cond)));
        mb.finish();
        let app = builder.finish().unwrap();
        let mut rt = Runtime::new(&app, RandomDecider::new(1));
        let act = rt.alloc(activity);
        // Execute onCreate directly as an event; the body compares the two
        // inflated views — interpretation must not panic and returns are
        // discarded, so assert via the view table.
        rt.lifecycle_event(act, android_model::LifecycleEvent::Create);
        assert_eq!(rt.views.len(), 1, "one view object per (activity, id)");
    }
}
