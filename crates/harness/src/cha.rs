//! Class-hierarchy-analysis reachability.
//!
//! Harness generation needs a cheap over-approximation of "which methods can
//! run once this activity is alive" to decide which listener registrations
//! belong to which activity's harness. CHA resolves every virtual call
//! against all concrete subtypes of the static receiver class — coarse, but
//! sound for discovery purposes (the precise call graph is built later by
//! the pointer analysis).

use apir::{InvokeKind, MethodId, Program, Stmt};
use std::collections::{HashSet, VecDeque};

/// Reachable-method computation under class-hierarchy dispatch.
#[derive(Debug)]
pub struct ChaReachability {
    reachable: HashSet<MethodId>,
}

impl ChaReachability {
    /// Computes the CHA-reachable set from `roots`.
    ///
    /// `extra_roots` is consulted on each newly reached method: it may
    /// return additional entrypoints (e.g. callbacks of listener classes
    /// registered in that method), which is how the §3.2 fixpoint loop is
    /// expressed.
    pub fn compute(
        program: &Program,
        roots: impl IntoIterator<Item = MethodId>,
        mut extra_roots: impl FnMut(&Program, MethodId) -> Vec<MethodId>,
    ) -> Self {
        let mut reachable = HashSet::new();
        let mut queue: VecDeque<MethodId> = roots.into_iter().collect();
        while let Some(m) = queue.pop_front() {
            if !reachable.insert(m) {
                continue;
            }
            for extra in extra_roots(program, m) {
                if !reachable.contains(&extra) {
                    queue.push_back(extra);
                }
            }
            let method = program.method(m);
            if !method.has_body() {
                continue;
            }
            for (_, stmt) in method.iter_stmts() {
                let Stmt::Call { kind, callee, .. } = stmt else {
                    continue;
                };
                match kind {
                    InvokeKind::Static | InvokeKind::Special => {
                        queue.push_back(*callee);
                    }
                    InvokeKind::Virtual => {
                        let decl_class = program.method(*callee).class;
                        for sub in program.concrete_subtypes(decl_class) {
                            if let Some(target) = program.dispatch(sub, *callee) {
                                queue.push_back(target);
                            }
                        }
                    }
                }
            }
        }
        Self { reachable }
    }

    /// Whether `m` is reachable.
    pub fn contains(&self, m: MethodId) -> bool {
        self.reachable.contains(&m)
    }

    /// The reachable set.
    pub fn methods(&self) -> impl Iterator<Item = MethodId> + '_ {
        self.reachable.iter().copied()
    }

    /// Number of reachable methods.
    pub fn len(&self) -> usize {
        self.reachable.len()
    }

    /// Whether nothing is reachable.
    pub fn is_empty(&self) -> bool {
        self.reachable.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apir::{Origin, ProgramBuilder};

    #[test]
    fn virtual_dispatch_reaches_overrides() {
        let mut pb = ProgramBuilder::new();
        let base = pb.class("Base", Origin::App).build();
        let mut cb = pb.class("Derived", Origin::App);
        cb.set_super(base);
        let derived = cb.build();
        let base_f = pb.abstract_method(base, "f", 1);
        let mut mb = pb.method(derived, "f");
        mb.set_param_count(1);
        mb.ret(None);
        let derived_f = mb.finish();
        let mut mb = pb.method(base, "root");
        mb.set_param_count(1);
        let this = mb.param(0);
        mb.vcall(base_f, this, vec![]);
        mb.ret(None);
        let root = mb.finish();
        let p = pb.finish();
        let r = ChaReachability::compute(&p, [root], |_, _| Vec::new());
        assert!(r.contains(root));
        assert!(r.contains(derived_f), "CHA must reach the override");
        assert!(!r.is_empty());
        assert!(r.len() >= 2);
        assert!(r.methods().any(|m| m == derived_f));
    }

    #[test]
    fn extra_roots_feed_the_fixpoint() {
        let mut pb = ProgramBuilder::new();
        let c = pb.class("C", Origin::App).build();
        let mut mb = pb.method(c, "root");
        mb.set_param_count(1);
        mb.ret(None);
        let root = mb.finish();
        let mut mb = pb.method(c, "callback");
        mb.set_param_count(1);
        mb.ret(None);
        let callback = mb.finish();
        let p = pb.finish();
        let r = ChaReachability::compute(&p, [root], |_, m| {
            if m == root {
                vec![callback]
            } else {
                Vec::new()
            }
        });
        assert!(r.contains(callback));
    }
}
