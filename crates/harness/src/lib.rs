//! # harness-gen — automatic harness creation (paper §3.2)
//!
//! Android apps have no `main`; the Android Framework drives them through
//! callbacks. Whole-program static analysis therefore needs a synthetic
//! entrypoint per activity — the *harness* of Figure 4 — that:
//!
//! 1. instantiates the activity and invokes its lifecycle callbacks in the
//!    order of the lifecycle state machine (Figure 5), with the
//!    `onStart`/`onResume` cycles made explicit so dominators can
//!    disambiguate the two instances of each;
//! 2. models the GUI as a nondeterministic event loop (`while (*) switch (*)`)
//!    whose cases invoke every discovered GUI callback (Figure 6), honoring
//!    layout ordering constraints;
//! 3. invokes statically-declared components (manifest receivers/services).
//!
//! Callback discovery is the fixpoint of §3.2: listener registrations found
//! in CHA-reachable code contribute callbacks, whose bodies may register
//! more listeners. Each discovered registration site is *instrumented* with
//! a store of the listener into a synthetic static field; the harness's GUI
//! case loads from that field and virtually invokes the listener interface
//! method, so the pointer analysis resolves the concrete callback bodies
//! exactly as registered.

mod cha;
mod generate;
mod registrations;

pub use cha::ChaReachability;
pub use generate::{generate, ActivityHarness, HarnessResult, HarnessSiteKind};
pub use registrations::{discover_in_app, Registration, RegistrationSeed};
