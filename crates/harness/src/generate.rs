//! Harness method generation (Figures 4, 5, 6).

use crate::cha::ChaReachability;
use crate::registrations::{self, Registration, RegistrationSeed};
use android_model::{AndroidApp, FrameworkClasses, FrameworkOp, GuiEventKind, LifecycleEvent};
use apir::{
    AllocSiteId, BlockId, CallSiteId, ClassId, ConstValue, FieldId, InvokeKind, Local, MethodId,
    Operand, Origin, Program, ProgramBuilder, Stmt, StmtAddr,
};
use std::collections::HashMap;

/// What a harness call site invokes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HarnessSiteKind {
    /// A lifecycle callback; `instance` is 1 or 2 (Figure 5's "1"/"2").
    Lifecycle {
        /// The lifecycle event.
        event: LifecycleEvent,
        /// The occurrence within the lifecycle CFG.
        instance: u8,
    },
    /// A GUI callback case in the event loop.
    Gui {
        /// The GUI event kind.
        event: GuiEventKind,
        /// The view resource id, when bound.
        view: Option<i32>,
        /// The originating registration call site (`None` for XML
        /// listeners).
        registration: Option<CallSiteId>,
    },
    /// A statically-declared broadcast receiver's `onReceive`.
    Receive {
        /// The receiver class.
        receiver: ClassId,
    },
    /// A declared service's `onStartCommand`.
    ServiceStart {
        /// The service class.
        service: ClassId,
    },
}

/// One activity's generated harness.
#[derive(Debug, Clone)]
pub struct ActivityHarness {
    /// The activity this harness drives.
    pub activity: ClassId,
    /// The synthetic harness method (`$Harness.$harness$<Activity>`).
    pub method: MethodId,
    /// The allocation site of the activity instance.
    pub activity_alloc: AllocSiteId,
    /// Every callback invocation site with its meaning.
    pub sites: Vec<(CallSiteId, HarnessSiteKind)>,
}

/// The output of harness generation.
#[derive(Debug, Clone)]
pub struct HarnessResult {
    /// The app, with its program replaced by the instrumented program plus
    /// harness class/methods.
    pub app: AndroidApp,
    /// The synthetic `$Harness` class.
    pub harness_class: ClassId,
    /// One harness per manifest activity.
    pub activities: Vec<ActivityHarness>,
    /// Discovered (and instrumented) listener registrations.
    pub registrations: Vec<Registration>,
}

impl HarnessResult {
    /// Looks up the harness for an activity.
    pub fn harness_for(&self, activity: ClassId) -> Option<&ActivityHarness> {
        self.activities.iter().find(|h| h.activity == activity)
    }

    /// Total number of harnesses (Table 3, column 2).
    pub fn harness_count(&self) -> usize {
        self.activities.len()
    }
}

/// Generates harnesses for every manifest activity (paper §3.2).
pub fn generate(app: AndroidApp) -> HarnessResult {
    let fw = app.framework.clone();
    let seeds = registrations::discover(&app.program, &fw);

    // Assign registrations to activities by CHA reachability (fixpoint of
    // §3.2: reached registrations contribute listener callbacks as roots).
    let assignment = assign_registrations(&app.program, &fw, &app, &seeds);

    let AndroidApp {
        name,
        program,
        framework,
        manifest,
        layouts,
    } = app;
    let mut pb = ProgramBuilder::from(program);
    let harness_class = pb.class("$Harness", Origin::App).build();
    let regs = registrations::instrument(&mut pb, harness_class, &fw, seeds);
    let reg_by_site: HashMap<CallSiteId, &Registration> =
        regs.iter().map(|r| (r.site, r)).collect();

    let mut activities = Vec::new();
    for (i, &activity) in manifest.activities.iter().enumerate() {
        let assigned: Vec<&Registration> = assignment
            .get(&activity)
            .map(|sites| {
                sites
                    .iter()
                    .filter_map(|s| reg_by_site.get(s).copied())
                    .collect()
            })
            .unwrap_or_default();
        let layout = layouts.iter().find(|l| l.activity == activity);
        let h = emit_harness(
            &mut pb,
            &fw,
            harness_class,
            activity,
            i,
            layout,
            &assigned,
            &manifest.receivers,
            &manifest.services,
        );
        activities.push(h);
    }

    let program = pb.finish();
    debug_assert!(program.validate().is_ok());
    let app = AndroidApp {
        name,
        program,
        framework,
        manifest,
        layouts,
    };
    HarnessResult {
        app,
        harness_class,
        activities,
        registrations: regs,
    }
}

/// Maps each activity to the registration sites reachable from it, in seed
/// discovery order (the order must be deterministic: it fixes the order in
/// which harness call sites are minted).
fn assign_registrations(
    program: &Program,
    fw: &FrameworkClasses,
    app: &AndroidApp,
    seeds: &[(StmtAddr, RegistrationSeed)],
) -> HashMap<ClassId, Vec<CallSiteId>> {
    let mut by_method: HashMap<MethodId, Vec<&RegistrationSeed>> = HashMap::new();
    for (_, seed) in seeds {
        by_method.entry(seed.in_method).or_default().push(seed);
    }

    let mut out: HashMap<ClassId, Vec<CallSiteId>> = HashMap::new();
    for &activity in &app.manifest.activities {
        let mut roots: Vec<MethodId> = Vec::new();
        for ev in LifecycleEvent::ALL {
            if let Some(m) = program.dispatch(activity, ev.declared_callback(fw)) {
                if program.method(m).has_body() {
                    roots.push(m);
                }
            }
        }
        if let Some(layout) = app.layout_for(activity) {
            for v in &layout.views {
                for &(_, m) in &v.xml_listeners {
                    roots.push(m);
                }
            }
        }
        for &r in &app.manifest.receivers {
            if let Some(m) = program.dispatch(r, fw.on_receive) {
                roots.push(m);
            }
        }
        for &s in &app.manifest.services {
            for decl in [
                fw.service_on_start_command,
                fw.service_on_create,
                fw.service_on_destroy,
            ] {
                if let Some(m) = program.dispatch(s, decl) {
                    roots.push(m);
                }
            }
        }

        let cha = ChaReachability::compute(program, roots, |p, m| {
            discovery_targets(p, fw, m, &by_method)
        });
        let sites: Vec<CallSiteId> = seeds
            .iter()
            .filter(|(_, seed)| cha.contains(seed.in_method))
            .map(|(_, seed)| seed.site)
            .collect();
        out.insert(activity, sites);
    }
    out
}

/// Extra CHA roots contributed by a reached method: callbacks of listeners
/// it registers, and task callbacks of concurrency ops it invokes.
fn discovery_targets(
    program: &Program,
    fw: &FrameworkClasses,
    m: MethodId,
    by_method: &HashMap<MethodId, Vec<&RegistrationSeed>>,
) -> Vec<MethodId> {
    let mut out = Vec::new();
    if let Some(seeds) = by_method.get(&m) {
        for seed in seeds {
            let iface_cb = seed.kind.interface_method(fw);
            let iface = program.method(iface_cb).class;
            for sub in program.concrete_subtypes(iface) {
                if let Some(t) = program.dispatch(sub, iface_cb) {
                    out.push(t);
                }
            }
        }
    }
    let method = program.method(m);
    if !method.has_body() {
        return out;
    }
    for (_, stmt) in method.iter_stmts() {
        let Stmt::Call { callee, .. } = stmt else {
            continue;
        };
        let Some(op) = FrameworkOp::classify(fw, *callee) else {
            continue;
        };
        let mut add_callbacks = |base: ClassId, decls: &[MethodId]| {
            for sub in program.concrete_subtypes(base) {
                for &decl in decls {
                    if let Some(t) = program.dispatch(sub, decl) {
                        if program.method(t).has_body() {
                            out.push(t);
                        }
                    }
                }
            }
        };
        use FrameworkOp::*;
        match op {
            ThreadStart => add_callbacks(fw.thread, &[fw.thread_run]),
            AsyncTaskExecute => add_callbacks(
                fw.async_task,
                &[
                    fw.async_task_on_pre_execute,
                    fw.async_task_do_in_background,
                    fw.async_task_on_post_execute,
                ],
            ),
            ExecutorExecute | HandlerPost | HandlerPostDelayed | ViewPost | ViewPostDelayed
            | RunOnUiThread => add_callbacks(fw.runnable, &[fw.runnable_run]),
            HandlerSendMessage | HandlerSendEmptyMessage => {
                add_callbacks(fw.handler, &[fw.handler_handle_message])
            }
            RegisterReceiver => add_callbacks(fw.broadcast_receiver, &[fw.on_receive]),
            TimerSchedule => add_callbacks(fw.timer_task, &[fw.timer_task_run]),
            RequestLocationUpdates => {
                add_callbacks(fw.location_listener, &[fw.on_location_changed])
            }
            SetOnCompletionListener => {
                add_callbacks(fw.on_completion_listener, &[fw.on_completion])
            }
            BindService => add_callbacks(
                fw.service_connection,
                &[fw.on_service_connected, fw.on_service_disconnected],
            ),
            StartService => add_callbacks(
                fw.service,
                &[
                    fw.service_on_start_command,
                    fw.service_on_create,
                    fw.service_on_destroy,
                ],
            ),
            _ => {}
        }
    }
    out
}

/// How a GUI case invokes its callback.
#[derive(Debug, Clone)]
enum Invoke {
    /// Call the activity's own method (XML listener) on the activity local.
    Direct(MethodId),
    /// Load the listener from the synthetic field and call the interface
    /// callback on it.
    ViaField(FieldId, MethodId),
}

#[derive(Debug, Clone)]
struct GuiCase {
    event: GuiEventKind,
    view: Option<i32>,
    invoke: Invoke,
    registration: Option<CallSiteId>,
}

/// Emits one activity's harness method (the `main` of Figure 4).
#[allow(clippy::too_many_arguments)]
fn emit_harness(
    pb: &mut ProgramBuilder,
    fw: &FrameworkClasses,
    harness_class: ClassId,
    activity: ClassId,
    index: usize,
    layout: Option<&android_model::Layout>,
    regs: &[&Registration],
    receivers: &[ClassId],
    services: &[ClassId],
) -> ActivityHarness {
    // Collect GUI cases: XML listeners first, then registrations.
    let mut cases: Vec<GuiCase> = Vec::new();
    let mut after_of: HashMap<i32, i32> = HashMap::new();
    if let Some(layout) = layout {
        for v in &layout.views {
            if let Some(a) = v.after {
                after_of.insert(v.view_id, a);
            }
            for &(event, m) in &v.xml_listeners {
                cases.push(GuiCase {
                    event,
                    view: Some(v.view_id),
                    invoke: Invoke::Direct(m),
                    registration: None,
                });
            }
        }
    }
    for r in regs {
        cases.push(GuiCase {
            event: r.kind,
            view: r.view_id,
            invoke: Invoke::ViaField(r.field, r.kind.interface_method(fw)),
            registration: Some(r.site),
        });
    }

    let mname = format!("$harness${index}");
    let mut mb = pb.method(harness_class, &mname);
    mb.set_static();
    mb.set_param_count(0);
    let mut sites: Vec<(CallSiteId, HarnessSiteKind)> = Vec::new();

    // --- entry block: allocations ---
    let act = mb.fresh_local();
    let activity_alloc = mb.new_(act, activity);
    let intent = mb.fresh_local();
    mb.new_(intent, fw.intent);
    let recv_locals: Vec<(ClassId, Local)> = receivers
        .iter()
        .map(|&r| {
            let l = mb.fresh_local();
            mb.new_(l, r);
            (r, l)
        })
        .collect();
    let svc_locals: Vec<(ClassId, Local)> = services
        .iter()
        .map(|&s| {
            let l = mb.fresh_local();
            mb.new_(l, s);
            (s, l)
        })
        .collect();

    let lifecycle = |mb: &mut apir::MethodBuilder<'_>,
                     sites: &mut Vec<(CallSiteId, HarnessSiteKind)>,
                     event: LifecycleEvent,
                     instance: u8| {
        let decl = event.declared_callback(fw);
        let site = mb.call(None, InvokeKind::Virtual, decl, Some(act), vec![]);
        sites.push((site, HarnessSiteKind::Lifecycle { event, instance }));
    };

    // onCreate in the entry block.
    lifecycle(&mut mb, &mut sites, LifecycleEvent::Create, 1);

    // Lifecycle CFG (Figure 5).
    let bb_start1 = mb.new_block();
    let bb_resume1 = mb.new_block();
    let loop_head = mb.new_block();
    let bb_pause = mb.new_block();
    let bb_resume2 = mb.new_block();
    let bb_stop = mb.new_block();
    let bb_restart = mb.new_block();
    let bb_destroy = mb.new_block();

    mb.goto(bb_start1);
    mb.switch_to(bb_start1);
    lifecycle(&mut mb, &mut sites, LifecycleEvent::Start, 1);
    mb.goto(bb_resume1);
    mb.switch_to(bb_resume1);
    lifecycle(&mut mb, &mut sites, LifecycleEvent::Resume, 1);
    mb.goto(loop_head);

    // --- GUI cases ---
    // Pre-create a block per case and a sub-head per view with children.
    let case_blocks: Vec<BlockId> = cases.iter().map(|_| mb.new_block()).collect();
    let mut children: HashMap<i32, Vec<usize>> = HashMap::new();
    for (i, c) in cases.iter().enumerate() {
        if let Some(v) = c.view {
            if let Some(&parent) = after_of.get(&v) {
                children.entry(parent).or_default().push(i);
            }
        }
    }
    // Mint sub-head blocks in sorted view order so block ids (and the
    // resulting program) are identical across runs.
    let mut subhead: HashMap<i32, BlockId> = HashMap::new();
    let mut parent_views: Vec<i32> = children.keys().copied().collect();
    parent_views.sort_unstable();
    for &v in &parent_views {
        subhead.insert(v, mb.new_block());
    }

    // Receiver and service case blocks.
    let recv_blocks: Vec<BlockId> = recv_locals.iter().map(|_| mb.new_block()).collect();
    let svc_blocks: Vec<BlockId> = svc_locals.iter().map(|_| mb.new_block()).collect();

    // Fill case blocks.
    for (i, case) in cases.iter().enumerate() {
        mb.switch_to(case_blocks[i]);
        let site = match &case.invoke {
            Invoke::Direct(m) => {
                let argc = mb.program().param_count(*m).saturating_sub(1);
                let args = vec![Operand::Const(ConstValue::Null); argc as usize];
                mb.call(None, InvokeKind::Virtual, *m, Some(act), args)
            }
            Invoke::ViaField(field, iface_cb) => {
                let l = mb.fresh_local();
                mb.static_load(l, *field);
                let argc = mb.program().param_count(*iface_cb).saturating_sub(1);
                let args = vec![Operand::Const(ConstValue::Null); argc as usize];
                mb.call(None, InvokeKind::Virtual, *iface_cb, Some(l), args)
            }
        };
        sites.push((
            site,
            HarnessSiteKind::Gui {
                event: case.event,
                view: case.view,
                registration: case.registration,
            },
        ));
        // Return edge: own sub-head if this case's view has children, else
        // the parent's sub-head if nested, else the main loop.
        let ret = case
            .view
            .and_then(|v| subhead.get(&v).copied())
            .or_else(|| {
                case.view
                    .and_then(|v| after_of.get(&v))
                    .and_then(|p| subhead.get(p).copied())
            })
            .unwrap_or(loop_head);
        mb.goto(ret);
    }

    // Fill sub-heads (sorted order keeps statement emission deterministic).
    for &v in &parent_views {
        let head = subhead[&v];
        let mut targets: Vec<BlockId> = children
            .get(&v)
            .map(|cs| cs.iter().map(|&i| case_blocks[i]).collect())
            .unwrap_or_default();
        targets.push(loop_head);
        mb.switch_to(head);
        mb.nondet(targets);
    }

    // Fill receiver/service blocks.
    for (bi, (r, l)) in recv_blocks.iter().zip(&recv_locals) {
        mb.switch_to(*bi);
        let site = mb.call(
            None,
            InvokeKind::Virtual,
            fw.on_receive,
            Some(*l),
            vec![Operand::Local(intent)],
        );
        sites.push((site, HarnessSiteKind::Receive { receiver: *r }));
        mb.goto(loop_head);
    }
    for (bi, (s, l)) in svc_blocks.iter().zip(&svc_locals) {
        mb.switch_to(*bi);
        let site = mb.call(
            None,
            InvokeKind::Virtual,
            fw.service_on_start_command,
            Some(*l),
            vec![Operand::Local(intent)],
        );
        sites.push((site, HarnessSiteKind::ServiceStart { service: *s }));
        mb.goto(loop_head);
    }

    // Main loop head: nondet over root cases, components, and pausing.
    let mut loop_targets: Vec<BlockId> = Vec::new();
    for (i, case) in cases.iter().enumerate() {
        let nested = case
            .view
            .map(|v| after_of.contains_key(&v))
            .unwrap_or(false);
        if !nested {
            loop_targets.push(case_blocks[i]);
        }
    }
    loop_targets.extend(recv_blocks.iter().copied());
    loop_targets.extend(svc_blocks.iter().copied());
    loop_targets.push(bb_pause);
    mb.switch_to(loop_head);
    mb.nondet(loop_targets);

    // Pause / resume2 / stop / restart / destroy (Figure 5's cycles).
    mb.switch_to(bb_pause);
    lifecycle(&mut mb, &mut sites, LifecycleEvent::Pause, 1);
    mb.nondet(vec![bb_resume2, bb_stop]);
    mb.switch_to(bb_resume2);
    lifecycle(&mut mb, &mut sites, LifecycleEvent::Resume, 2);
    mb.goto(loop_head);
    mb.switch_to(bb_stop);
    lifecycle(&mut mb, &mut sites, LifecycleEvent::Stop, 1);
    mb.nondet(vec![bb_restart, bb_destroy]);
    mb.switch_to(bb_restart);
    lifecycle(&mut mb, &mut sites, LifecycleEvent::Restart, 1);
    lifecycle(&mut mb, &mut sites, LifecycleEvent::Start, 2);
    mb.goto(bb_resume1);
    mb.switch_to(bb_destroy);
    lifecycle(&mut mb, &mut sites, LifecycleEvent::Destroy, 1);
    mb.ret(None);

    let method = mb.finish();
    ActivityHarness {
        activity,
        method,
        activity_alloc,
        sites,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use android_model::{AndroidAppBuilder, Layout, ViewDecl};
    use apir::Dominators;

    fn simple_app() -> AndroidApp {
        let mut app = AndroidAppBuilder::new("T");
        let main = app.activity("Main").build();
        let mut mb = app.method(main, "onCreate");
        mb.set_param_count(1);
        mb.ret(None);
        mb.finish();
        let mut mb = app.method(main, "onClickHome");
        mb.set_param_count(2);
        mb.ret(None);
        let handler = mb.finish();
        let fw = app.framework().clone();
        let mut layout = Layout::new(main);
        layout.add_view(ViewDecl::new(1, fw.view).with_xml_listener(GuiEventKind::Click, handler));
        layout.add_view(
            ViewDecl::new(2, fw.view)
                .with_xml_listener(GuiEventKind::Click, handler)
                .with_after(1),
        );
        app.add_layout(layout);
        app.finish().unwrap()
    }

    #[test]
    fn generates_one_harness_per_activity() {
        let result = generate(simple_app());
        assert_eq!(result.harness_count(), 1);
        assert!(result.app.program.validate().is_ok());
        let h = &result.activities[0];
        // 10 lifecycle sites (create, start1, resume1, pause, resume2,
        // stop, restart, start2, destroy) + 2 GUI sites.
        let lifecycle_sites = h
            .sites
            .iter()
            .filter(|(_, k)| matches!(k, HarnessSiteKind::Lifecycle { .. }))
            .count();
        assert_eq!(lifecycle_sites, 9);
        let gui_sites = h
            .sites
            .iter()
            .filter(|(_, k)| matches!(k, HarnessSiteKind::Gui { .. }))
            .count();
        assert_eq!(gui_sites, 2);
    }

    #[test]
    fn lifecycle_dominance_matches_figure_5() {
        let result = generate(simple_app());
        let h = &result.activities[0];
        let p = &result.app.program;
        let method = p.method(h.method);
        let dom = Dominators::compute(method);
        let addr = |ev: LifecycleEvent, inst: u8| {
            let (site, _) = h
                .sites
                .iter()
                .find(|(_, k)| {
                    matches!(k, HarnessSiteKind::Lifecycle { event, instance }
                        if *event == ev && *instance == inst)
                })
                .unwrap();
            p.call_site_addr(*site)
        };
        use LifecycleEvent::*;
        // onCreate ≺ everything.
        assert!(dom.dominates_stmt(addr(Create, 1), addr(Destroy, 1)));
        // onStart "1" ≺ onStop.
        assert!(dom.dominates_stmt(addr(Start, 1), addr(Stop, 1)));
        // onResume "1" ≺ onPause.
        assert!(dom.dominates_stmt(addr(Resume, 1), addr(Pause, 1)));
        // onPause ≺ onResume "2".
        assert!(dom.dominates_stmt(addr(Pause, 1), addr(Resume, 2)));
        // onStop ≺ onStart "2".
        assert!(dom.dominates_stmt(addr(Stop, 1), addr(Start, 2)));
        // But onStart "2" does NOT dominate onStop (it's in the cycle).
        assert!(!dom.dominates_stmt(addr(Start, 2), addr(Stop, 1)));
        // And onResume "2" does not dominate onPause.
        assert!(!dom.dominates_stmt(addr(Resume, 2), addr(Pause, 1)));
    }

    #[test]
    fn gui_after_constraint_nests_cases() {
        let result = generate(simple_app());
        let h = &result.activities[0];
        let p = &result.app.program;
        let dom = Dominators::compute(p.method(h.method));
        let gui_addr = |view: i32| {
            let (site, _) = h
                .sites
                .iter()
                .find(
                    |(_, k)| matches!(k, HarnessSiteKind::Gui { view: Some(v), .. } if *v == view),
                )
                .unwrap();
            p.call_site_addr(*site)
        };
        // View 2 is only reachable after view 1's click: onClick1 ≺ onClick2.
        assert!(dom.dominates_stmt(gui_addr(1), gui_addr(2)));
        assert!(!dom.dominates_stmt(gui_addr(2), gui_addr(1)));
        // onResume "1" dominates both GUI cases (Figure 6).
        let resume1 = h
            .sites
            .iter()
            .find(|(_, k)| {
                matches!(
                    k,
                    HarnessSiteKind::Lifecycle {
                        event: LifecycleEvent::Resume,
                        instance: 1
                    }
                )
            })
            .unwrap()
            .0;
        assert!(dom.dominates_stmt(p.call_site_addr(resume1), gui_addr(1)));
    }

    #[test]
    fn registration_based_cases_load_from_synthetic_fields() {
        // App registering a listener programmatically in onCreate.
        let mut app = AndroidAppBuilder::new("T");
        let fw = app.framework().clone();
        let main = app.activity("Main").build();
        let mut cb = app.subclass("L", fw.object);
        cb.add_interface(fw.on_click_listener);
        let listener = cb.build();
        let mut mb = app.method(listener, "onClick");
        mb.set_param_count(2);
        mb.ret(None);
        mb.finish();
        let mut mb = app.method(main, "onCreate");
        mb.set_param_count(1);
        let this = mb.param(0);
        let v = mb.fresh_local();
        let l = mb.fresh_local();
        mb.call(
            Some(v),
            InvokeKind::Virtual,
            fw.find_view_by_id,
            Some(this),
            vec![Operand::Const(ConstValue::Int(5))],
        );
        mb.new_(l, listener);
        mb.call(
            None,
            InvokeKind::Virtual,
            fw.set_on_click_listener,
            Some(v),
            vec![Operand::Local(l)],
        );
        mb.ret(None);
        mb.finish();
        let app = app.finish().unwrap();

        let result = generate(app);
        assert_eq!(result.registrations.len(), 1);
        assert_eq!(result.registrations[0].view_id, Some(5));
        let h = &result.activities[0];
        let gui = h.sites.iter().find(|(_, k)| {
            matches!(
                k,
                HarnessSiteKind::Gui {
                    registration: Some(_),
                    ..
                }
            )
        });
        assert!(
            gui.is_some(),
            "registration must produce a harness GUI case"
        );
    }

    #[test]
    fn declared_receivers_get_loop_cases() {
        let mut app = AndroidAppBuilder::new("T");
        let _main = app.activity("Main").build();
        let recv = app.receiver("R").build();
        let mut mb = app.method(recv, "onReceive");
        mb.set_param_count(2);
        mb.ret(None);
        mb.finish();
        let app = app.finish().unwrap();
        let result = generate(app);
        let h = &result.activities[0];
        assert!(h
            .sites
            .iter()
            .any(|(_, k)| matches!(k, HarnessSiteKind::Receive { receiver } if *receiver == recv)));
    }
}
