//! Listener-registration discovery and instrumentation.

use android_model::{AndroidApp, FrameworkClasses, FrameworkOp, GuiEventKind};
use apir::{
    local_defs, CallSiteId, ClassId, ConstValue, FieldId, MethodId, Program, ProgramBuilder, Stmt,
    StmtAddr, Type,
};

/// A discovered `View.setOn*Listener(listener)` call site.
#[derive(Debug, Clone)]
pub struct Registration {
    /// The registration call site.
    pub site: CallSiteId,
    /// The GUI event the listener handles.
    pub kind: GuiEventKind,
    /// The method containing the registration.
    pub in_method: MethodId,
    /// The synthetic static field the listener is stored into (filled in by
    /// instrumentation).
    pub field: FieldId,
    /// The view's resource id, when the receiver traces back to a
    /// `findViewById(const)` call (the inflated-view binding).
    pub view_id: Option<i32>,
}

/// Scans every app-origin method for listener registrations.
///
/// Returns registrations with a placeholder `field` (instrumentation
/// assigns the real one).
pub fn discover(program: &Program, fw: &FrameworkClasses) -> Vec<(StmtAddr, RegistrationSeed)> {
    let mut out = Vec::new();
    for method in program.methods() {
        if program.class(method.class).origin == apir::Origin::Framework || !method.has_body() {
            continue;
        }
        for (addr, stmt) in method.iter_stmts() {
            let Stmt::Call {
                site,
                callee,
                receiver,
                args,
                ..
            } = stmt
            else {
                continue;
            };
            let Some(op) = FrameworkOp::classify(fw, *callee) else {
                continue;
            };
            let Some(kind) = op.as_listener_registration() else {
                continue;
            };
            let Some(listener) = args.first().and_then(|a| a.as_local()) else {
                continue;
            };
            let view_id = receiver.and_then(|recv| view_id_of(program, fw, addr, recv));
            out.push((
                addr,
                RegistrationSeed {
                    site: *site,
                    kind,
                    in_method: method.id,
                    listener,
                    view_id,
                },
            ));
        }
    }
    out
}

/// A registration before instrumentation assigned its synthetic field.
#[derive(Debug, Clone)]
pub struct RegistrationSeed {
    /// The registration call site.
    pub site: CallSiteId,
    /// The GUI event kind.
    pub kind: GuiEventKind,
    /// The registering method.
    pub in_method: MethodId,
    /// The local holding the listener argument.
    pub listener: apir::Local,
    /// The view's resource id, if resolvable.
    pub view_id: Option<i32>,
}

/// Traces a registration receiver back to `findViewById(const)`.
fn view_id_of(
    program: &Program,
    fw: &FrameworkClasses,
    addr: StmtAddr,
    recv: apir::Local,
) -> Option<i32> {
    let method = program.method(addr.method);
    let (def_addr, origin) = local_defs::find_value_origin(method, addr, recv)?;
    let Stmt::Call { callee, args, .. } = origin else {
        return None;
    };
    if FrameworkOp::classify(fw, *callee) != Some(FrameworkOp::FindViewById) {
        return None;
    }
    match local_defs::resolve_const_operand(method, def_addr, *args.first()?)? {
        ConstValue::Int(id) => i32::try_from(id).ok(),
        _ => None,
    }
}

/// Instruments `pb` with one synthetic static field per registration and a
/// store of the listener into it right after each registration call.
///
/// Insertion happens in descending address order so earlier insertions do
/// not invalidate later addresses.
pub fn instrument(
    pb: &mut ProgramBuilder,
    harness_class: ClassId,
    fw: &FrameworkClasses,
    mut seeds: Vec<(StmtAddr, RegistrationSeed)>,
) -> Vec<Registration> {
    seeds.sort_by_key(|s| std::cmp::Reverse(s.0));
    let mut out = Vec::new();
    for (addr, seed) in seeds {
        let iface = match seed.kind {
            GuiEventKind::Click => fw.on_click_listener,
            GuiEventKind::LongClick => fw.on_long_click_listener,
            GuiEventKind::Scroll => fw.on_scroll_listener,
            GuiEventKind::ItemClick => fw.on_item_click_listener,
            GuiEventKind::TextChanged => fw.text_watcher,
        };
        let field = pb.add_field(
            harness_class,
            &format!("$reg${}", seed.site),
            Type::Ref(iface),
            true,
        );
        pb.insert_stmt_after(
            addr,
            Stmt::StaticStore {
                field,
                value: seed.listener.into(),
            },
        );
        out.push(Registration {
            site: seed.site,
            kind: seed.kind,
            in_method: seed.in_method,
            field,
            view_id: seed.view_id,
        });
    }
    out.reverse(); // restore discovery order
    out
}

/// Convenience: discovery over a finished app (used by tests).
pub fn discover_in_app(app: &AndroidApp) -> Vec<(StmtAddr, RegistrationSeed)> {
    discover(&app.program, &app.framework)
}

#[cfg(test)]
mod tests {
    use super::*;
    use android_model::AndroidAppBuilder;
    use apir::{InvokeKind, Operand};

    /// Builds an app whose onCreate does:
    ///   v = findViewById(7); l = new Listener; v.setOnClickListener(l)
    fn app_with_registration() -> AndroidApp {
        let mut app = AndroidAppBuilder::new("T");
        let fw = app.framework().clone();
        let main = app.activity("Main").build();
        let mut cb = app.subclass("Listener", fw.object);
        cb.add_interface(fw.on_click_listener);
        let listener = cb.build();
        let mut mb = app.method(listener, "onClick");
        mb.set_param_count(2);
        mb.ret(None);
        mb.finish();

        let mut mb = app.method(main, "onCreate");
        mb.set_param_count(1);
        let this = mb.param(0);
        let v = mb.fresh_local();
        let l = mb.fresh_local();
        let id = mb.fresh_local();
        mb.const_(id, ConstValue::Int(7));
        mb.call(
            Some(v),
            InvokeKind::Virtual,
            fw.find_view_by_id,
            Some(this),
            vec![Operand::Local(id)],
        );
        mb.new_(l, listener);
        mb.call(
            None,
            InvokeKind::Virtual,
            fw.set_on_click_listener,
            Some(v),
            vec![Operand::Local(l)],
        );
        mb.ret(None);
        mb.finish();
        app.finish().unwrap()
    }

    #[test]
    fn discovers_registration_with_view_binding() {
        let app = app_with_registration();
        let seeds = discover_in_app(&app);
        assert_eq!(seeds.len(), 1);
        let (_, seed) = &seeds[0];
        assert_eq!(seed.kind, GuiEventKind::Click);
        assert_eq!(seed.view_id, Some(7));
    }

    #[test]
    fn instrumentation_adds_field_and_store() {
        let app = app_with_registration();
        let fw = app.framework.clone();
        let seeds = discover(&app.program, &fw);
        let mut pb = ProgramBuilder::from(app.program);
        let hclass = pb.class("$Harness", apir::Origin::App).build();
        let regs = instrument(&mut pb, hclass, &fw, seeds);
        let p = pb.finish();
        assert!(p.validate().is_ok());
        assert_eq!(regs.len(), 1);
        let f = p.field(regs[0].field);
        assert!(f.is_static);
        assert_eq!(f.class, hclass);
        // The store exists right after the registration call.
        let addr = p.call_site_addr(regs[0].site);
        let method = p.method(addr.method);
        let next = apir::StmtAddr::new(addr.method, addr.block, addr.stmt + 1);
        assert!(matches!(
            method.stmt_at(next),
            Some(Stmt::StaticStore { field, .. }) if *field == regs[0].field
        ));
    }
}
