//! A small string interner for class, method, and field names.

use std::collections::HashMap;
use std::fmt;

/// An interned string handle.
///
/// Symbols are cheap to copy and compare; resolve them back to text through
/// the [`Interner`] (or [`crate::Program::name`]).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(pub u32);

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sym{}", self.0)
    }
}

/// Deduplicating storage for strings.
///
/// # Example
///
/// ```
/// let mut interner = apir::Interner::new();
/// let a = interner.intern("onCreate");
/// let b = interner.intern("onCreate");
/// assert_eq!(a, b);
/// assert_eq!(interner.resolve(a), "onCreate");
/// ```
#[derive(Debug, Clone, Default)]
pub struct Interner {
    strings: Vec<String>,
    lookup: HashMap<String, Symbol>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `text`, returning the symbol for it.
    pub fn intern(&mut self, text: &str) -> Symbol {
        if let Some(&sym) = self.lookup.get(text) {
            return sym;
        }
        let sym = Symbol(u32::try_from(self.strings.len()).expect("interner overflow"));
        self.strings.push(text.to_owned());
        self.lookup.insert(text.to_owned(), sym);
        sym
    }

    /// Returns the symbol for `text` if it was interned before.
    pub fn get(&self, text: &str) -> Option<Symbol> {
        self.lookup.get(text).copied()
    }

    /// Resolves a symbol back to its text.
    ///
    /// # Panics
    ///
    /// Panics if `sym` was minted by a different interner.
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.strings[sym.0 as usize]
    }

    /// Number of distinct strings interned.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether the interner is empty.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_deduplicates() {
        let mut i = Interner::new();
        let a = i.intern("x");
        let b = i.intern("y");
        let c = i.intern("x");
        assert_eq!(a, c);
        assert_ne!(a, b);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn resolve_round_trips() {
        let mut i = Interner::new();
        let s = i.intern("android.app.Activity");
        assert_eq!(i.resolve(s), "android.app.Activity");
    }

    #[test]
    fn get_does_not_intern() {
        let mut i = Interner::new();
        assert!(i.get("missing").is_none());
        let s = i.intern("present");
        assert_eq!(i.get("present"), Some(s));
        assert!(!i.is_empty());
    }
}
