//! A small string interner for class, method, and field names.
//!
//! An [`Interner`] runs in one of two modes:
//!
//! - **standalone** (the default): strings live in this interner, each
//!   stored exactly once as an `Arc<str>` and looked up by hash — no
//!   second copy keyed in a map;
//! - **arena-backed** ([`Interner::with_arena`]): strings live in a
//!   process-wide [`SymbolArena`] shared across apps, and the interner
//!   keeps only cheap `Arc` mirrors of the symbols it has seen, so
//!   corpus-wide names like `android.app.Activity` are stored once per
//!   process instead of once per app.
//!
//! Symbols from different modes (or different arenas) are not
//! interchangeable; a `Symbol` is only meaningful to the interner (or
//! arena) that minted it.

use crate::arena::SymbolArena;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// An interned string handle.
///
/// Symbols are cheap to copy and compare; resolve them back to text through
/// the [`Interner`] (or [`crate::Program::name`]).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(pub u32);

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sym{}", self.0)
    }
}

/// FNV-1a over a string — the shared hash for interner and arena
/// lookups, stable across platforms and Rust versions.
pub(crate) fn fnv64_str(text: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Deduplicating storage for strings.
///
/// # Example
///
/// ```
/// let mut interner = apir::Interner::new();
/// let a = interner.intern("onCreate");
/// let b = interner.intern("onCreate");
/// assert_eq!(a, b);
/// assert_eq!(interner.resolve(a), "onCreate");
/// ```
#[derive(Debug, Clone, Default)]
pub struct Interner {
    /// Shared arena, when this interner is arena-backed.
    arena: Option<Arc<SymbolArena>>,
    /// Standalone mode: symbol index → text (the only copy).
    strings: Vec<Arc<str>>,
    /// Arena mode: arena symbol → mirrored text for borrow-based resolve.
    mirror: HashMap<u32, Arc<str>>,
    /// Hash of the text → candidate symbols known to this interner.
    lookup: HashMap<u64, Vec<Symbol>>,
    /// Text bytes owned by this interner (0 in arena mode — the arena
    /// holds the only copy).
    bytes: usize,
}

impl Interner {
    /// Creates an empty standalone interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an interner backed by a shared [`SymbolArena`]: symbols
    /// are minted by (and stable across every interner sharing) the
    /// arena, and string storage is not duplicated per interner.
    pub fn with_arena(arena: Arc<SymbolArena>) -> Self {
        Self {
            arena: Some(arena),
            ..Self::default()
        }
    }

    /// The shared arena, when arena-backed.
    pub fn arena(&self) -> Option<&Arc<SymbolArena>> {
        self.arena.as_ref()
    }

    fn local_text(&self, sym: Symbol) -> &str {
        if self.arena.is_some() {
            self.mirror
                .get(&sym.0)
                .expect("symbol minted by a different interner")
        } else {
            &self.strings[sym.0 as usize]
        }
    }

    fn find_local(&self, hash: u64, text: &str) -> Option<Symbol> {
        self.lookup
            .get(&hash)?
            .iter()
            .copied()
            .find(|&s| self.local_text(s) == text)
    }

    /// Interns `text`, returning the symbol for it.
    pub fn intern(&mut self, text: &str) -> Symbol {
        let hash = fnv64_str(text);
        if let Some(sym) = self.find_local(hash, text) {
            return sym;
        }
        let sym = match &self.arena {
            Some(arena) => {
                let sym = arena.intern(text);
                self.mirror.insert(sym.0, arena.resolve(sym));
                sym
            }
            None => {
                let sym = Symbol(u32::try_from(self.strings.len()).expect("interner overflow"));
                self.strings.push(Arc::from(text));
                self.bytes += text.len();
                sym
            }
        };
        self.lookup.entry(hash).or_default().push(sym);
        sym
    }

    /// Returns the symbol for `text` if *this interner* interned it
    /// before. In arena mode a string another interner put in the shared
    /// arena does not count — its symbol would not resolve here.
    pub fn get(&self, text: &str) -> Option<Symbol> {
        self.find_local(fnv64_str(text), text)
    }

    /// Resolves a symbol back to its text.
    ///
    /// # Panics
    ///
    /// Panics if `sym` was minted by a different interner.
    pub fn resolve(&self, sym: Symbol) -> &str {
        self.local_text(sym)
    }

    /// Number of distinct strings interned through this interner.
    pub fn len(&self) -> usize {
        if self.arena.is_some() {
            self.mirror.len()
        } else {
            self.strings.len()
        }
    }

    /// Whether the interner is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Text bytes owned by this interner. Standalone mode stores each
    /// string exactly once (no key duplication in the lookup map, which
    /// is keyed by hash); arena mode owns none — the shared
    /// [`SymbolArena::bytes_resident`] holds the only copy.
    pub fn bytes_resident(&self) -> usize {
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_deduplicates() {
        let mut i = Interner::new();
        let a = i.intern("x");
        let b = i.intern("y");
        let c = i.intern("x");
        assert_eq!(a, c);
        assert_ne!(a, b);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn resolve_round_trips() {
        let mut i = Interner::new();
        let s = i.intern("android.app.Activity");
        assert_eq!(i.resolve(s), "android.app.Activity");
    }

    #[test]
    fn get_does_not_intern() {
        let mut i = Interner::new();
        assert!(i.get("missing").is_none());
        let s = i.intern("present");
        assert_eq!(i.get("present"), Some(s));
        assert!(!i.is_empty());
    }

    #[test]
    fn bytes_resident_counts_each_string_once() {
        let mut i = Interner::new();
        i.intern("abcd");
        i.intern("abcd");
        i.intern("ef");
        assert_eq!(i.bytes_resident(), 6);
    }

    #[test]
    fn arena_backed_interners_share_symbols() {
        let arena = Arc::new(SymbolArena::new());
        let mut a = Interner::with_arena(Arc::clone(&arena));
        let mut b = Interner::with_arena(Arc::clone(&arena));
        let s1 = a.intern("android.os.Handler");
        let s2 = b.intern("android.os.Handler");
        assert_eq!(s1, s2, "symbols are stable across interners");
        assert_eq!(a.resolve(s1), "android.os.Handler");
        assert_eq!(b.resolve(s2), "android.os.Handler");
        assert_eq!(arena.len(), 1);
        // Per-interner residency is zero: the arena owns the text.
        assert_eq!(a.bytes_resident(), 0);
        assert_eq!(b.bytes_resident(), 0);
        // `get` only answers for locally-seen strings.
        let s3 = a.intern("local.Only");
        assert_eq!(a.get("local.Only"), Some(s3));
        assert_eq!(b.get("local.Only"), None);
    }
}
