//! Whole-program well-formedness checks.

use crate::ids::{BlockId, ClassId, FieldId, Local, MethodId};
use crate::method::Terminator;
use crate::program::Program;
use crate::stmt::Stmt;
use std::error::Error;
use std::fmt;

/// A well-formedness violation found by [`Program::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateError {
    /// A block terminator targets a block id that does not exist.
    BadBlockTarget {
        /// Offending method.
        method: MethodId,
        /// Block whose terminator is bad.
        block: BlockId,
        /// The out-of-range target.
        target: BlockId,
    },
    /// A statement references a local `>= local_count`.
    BadLocal {
        /// Offending method.
        method: MethodId,
        /// The out-of-range local.
        local: Local,
    },
    /// A statement references a field id that does not exist.
    BadField {
        /// Offending method.
        method: MethodId,
        /// The out-of-range field.
        field: FieldId,
    },
    /// A call statement names a method id that does not exist.
    BadCallee {
        /// Offending method.
        method: MethodId,
        /// The out-of-range callee.
        callee: MethodId,
    },
    /// A `new` statement instantiates an interface.
    NewOfInterface {
        /// Offending method.
        method: MethodId,
        /// The interface being instantiated.
        class: ClassId,
    },
    /// A non-abstract method has no blocks.
    EmptyBody {
        /// Offending method.
        method: MethodId,
    },
    /// A static-field access names an instance field, or vice versa.
    StaticnessMismatch {
        /// Offending method.
        method: MethodId,
        /// The field whose staticness does not match the access.
        field: FieldId,
    },
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::BadBlockTarget {
                method,
                block,
                target,
            } => {
                write!(f, "{method}:{block} targets nonexistent block {target}")
            }
            ValidateError::BadLocal { method, local } => {
                write!(f, "{method} references out-of-range local {local}")
            }
            ValidateError::BadField { method, field } => {
                write!(f, "{method} references nonexistent field {field}")
            }
            ValidateError::BadCallee { method, callee } => {
                write!(f, "{method} calls nonexistent method {callee}")
            }
            ValidateError::NewOfInterface { method, class } => {
                write!(f, "{method} instantiates interface {class}")
            }
            ValidateError::EmptyBody { method } => {
                write!(f, "non-abstract method {method} has no blocks")
            }
            ValidateError::StaticnessMismatch { method, field } => {
                write!(f, "{method} accesses field {field} with wrong staticness")
            }
        }
    }
}

impl Error for ValidateError {}

impl Program {
    /// Checks structural well-formedness of every method body.
    ///
    /// # Errors
    ///
    /// Returns the first [`ValidateError`] found, if any.
    pub fn validate(&self) -> Result<(), ValidateError> {
        for method in self.methods() {
            if method.is_abstract {
                continue;
            }
            if method.blocks.is_empty() {
                return Err(ValidateError::EmptyBody { method: method.id });
            }
            let check_local = |l: Local| -> Result<(), ValidateError> {
                if l.0 >= method.local_count {
                    Err(ValidateError::BadLocal {
                        method: method.id,
                        local: l,
                    })
                } else {
                    Ok(())
                }
            };
            let check_field = |fid: FieldId, want_static: bool| -> Result<(), ValidateError> {
                if fid.index() >= self.fields().len() {
                    return Err(ValidateError::BadField {
                        method: method.id,
                        field: fid,
                    });
                }
                if self.field(fid).is_static != want_static {
                    return Err(ValidateError::StaticnessMismatch {
                        method: method.id,
                        field: fid,
                    });
                }
                Ok(())
            };
            for (_, block) in method.iter_blocks() {
                for stmt in &block.stmts {
                    if let Some(d) = stmt.def() {
                        check_local(d)?;
                    }
                    for u in stmt.uses() {
                        check_local(u)?;
                    }
                    match stmt {
                        Stmt::New { class, .. } if self.class(*class).is_interface => {
                            return Err(ValidateError::NewOfInterface {
                                method: method.id,
                                class: *class,
                            });
                        }
                        Stmt::Load { field, .. } | Stmt::Store { field, .. } => {
                            check_field(*field, false)?;
                        }
                        Stmt::StaticLoad { field, .. } | Stmt::StaticStore { field, .. } => {
                            check_field(*field, true)?;
                        }
                        Stmt::Call { callee, .. } if callee.index() >= self.methods().len() => {
                            return Err(ValidateError::BadCallee {
                                method: method.id,
                                callee: *callee,
                            });
                        }
                        _ => {}
                    }
                }
                for target in block.terminator.successors() {
                    if target.index() >= method.blocks.len() {
                        let block_id = method
                            .iter_blocks()
                            .find(|(_, b)| std::ptr::eq(*b, block))
                            .map(|(id, _)| id)
                            .unwrap_or(BlockId(0));
                        return Err(ValidateError::BadBlockTarget {
                            method: method.id,
                            block: block_id,
                            target,
                        });
                    }
                }
                // Returns carry operands too; check them.
                if let Terminator::Return(Some(op)) = &block.terminator {
                    if let Some(l) = op.as_local() {
                        check_local(l)?;
                    }
                }
                if let Terminator::If { cond, .. } = &block.terminator {
                    if let Some(l) = cond.as_local() {
                        check_local(l)?;
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::class::Origin;
    use crate::stmt::{ConstValue, Operand};

    #[test]
    fn valid_program_passes() {
        let mut pb = ProgramBuilder::new();
        let c = pb.class("A", Origin::App).build();
        let mut mb = pb.method(c, "m");
        mb.set_param_count(1);
        mb.ret(None);
        mb.finish();
        assert!(pb.finish().validate().is_ok());
    }

    #[test]
    fn bad_block_target_detected() {
        let mut pb = ProgramBuilder::new();
        let c = pb.class("A", Origin::App).build();
        let mut mb = pb.method(c, "m");
        mb.set_param_count(1);
        mb.goto(BlockId(7));
        mb.finish();
        let err = pb.finish().validate().unwrap_err();
        assert!(matches!(
            err,
            ValidateError::BadBlockTarget {
                target: BlockId(7),
                ..
            }
        ));
        assert!(err.to_string().contains("nonexistent block"));
    }

    #[test]
    fn bad_local_detected() {
        let mut pb = ProgramBuilder::new();
        let c = pb.class("A", Origin::App).build();
        let mut mb = pb.method(c, "m");
        mb.set_param_count(1);
        mb.ret(Some(Operand::Local(Local(99))));
        mb.finish();
        let err = pb.finish().validate().unwrap_err();
        assert!(matches!(
            err,
            ValidateError::BadLocal {
                local: Local(99),
                ..
            }
        ));
    }

    #[test]
    fn staticness_mismatch_detected() {
        let mut pb = ProgramBuilder::new();
        let mut cb = pb.class("A", Origin::App);
        let f = cb.static_field("g", crate::Type::Int);
        let c = cb.build();
        let mut mb = pb.method(c, "m");
        mb.set_param_count(1);
        let this = mb.param(0);
        // Instance-style store to a static field.
        mb.store(this, f, Operand::Const(ConstValue::Int(0)));
        mb.ret(None);
        mb.finish();
        let err = pb.finish().validate().unwrap_err();
        assert!(matches!(err, ValidateError::StaticnessMismatch { .. }));
    }

    #[test]
    fn interface_instantiation_detected() {
        let mut pb = ProgramBuilder::new();
        let mut ib = pb.class("I", Origin::App);
        ib.set_interface();
        let i = ib.build();
        let c = pb.class("A", Origin::App).build();
        let mut mb = pb.method(c, "m");
        mb.set_param_count(1);
        let v = mb.fresh_local();
        mb.new_(v, i);
        mb.ret(None);
        mb.finish();
        let err = pb.finish().validate().unwrap_err();
        assert!(matches!(err, ValidateError::NewOfInterface { .. }));
    }
}
