//! The (deliberately small) type language of the IR.

use crate::ids::ClassId;
use std::fmt;

/// A value type.
///
/// The analyses in this workspace only need to distinguish primitives from
/// references — EventRacer's "race coverage" filter, for instance, only
/// reasons about primitive-typed guards, and SIERRA's prioritization ranks
/// races on reference-typed fields higher because they can manifest as
/// `NullPointerException`s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Type {
    /// A machine integer (models all of Java's integral types).
    Int,
    /// A boolean.
    Bool,
    /// An immutable string (models `java.lang.String`).
    Str,
    /// A reference to an instance of `ClassId` (or a subclass).
    Ref(ClassId),
}

impl Type {
    /// Whether this is a primitive (non-reference) type.
    pub fn is_primitive(self) -> bool {
        !matches!(self, Type::Ref(_))
    }

    /// Whether this is a reference type.
    pub fn is_reference(self) -> bool {
        matches!(self, Type::Ref(_))
    }

    /// The referenced class, if this is a reference type.
    pub fn as_class(self) -> Option<ClassId> {
        match self {
            Type::Ref(c) => Some(c),
            _ => None,
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Int => write!(f, "int"),
            Type::Bool => write!(f, "bool"),
            Type::Str => write!(f, "str"),
            Type::Ref(c) => write!(f, "ref({c})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_and_references_partition_types() {
        assert!(Type::Int.is_primitive());
        assert!(Type::Bool.is_primitive());
        assert!(Type::Str.is_primitive());
        let r = Type::Ref(ClassId(0));
        assert!(r.is_reference());
        assert!(!r.is_primitive());
        assert_eq!(r.as_class(), Some(ClassId(0)));
        assert_eq!(Type::Int.as_class(), None);
    }

    #[test]
    fn types_display() {
        assert_eq!(Type::Int.to_string(), "int");
        assert_eq!(Type::Ref(ClassId(3)).to_string(), "ref(C3)");
    }
}
