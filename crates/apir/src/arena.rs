//! A sharded, append-only symbol arena shared across analysis jobs.
//!
//! Corpus runs (`engine::run_jobs`) and the long-lived `sierra serve`
//! loop intern the same framework class/method/field names once per app;
//! a [`SymbolArena`] stores each distinct string exactly once for the
//! whole process and hands out stable [`Symbol`]s, so per-app interners
//! degrade to cheap pointer mirrors (see [`Interner::with_arena`]).
//!
//! The arena is append-only: symbols are never removed or renumbered, so
//! a `Symbol` minted by any job stays valid for the lifetime of the
//! arena. Reads take a per-shard `RwLock` in read mode (uncontended in
//! the steady state, where every lookup hits); writes lock only the one
//! shard owning the string's hash. A `Symbol` encodes its shard in the
//! low bits — `(index << SHARD_BITS) | shard` — so resolution never
//! searches.
//!
//! [`Interner::with_arena`]: crate::Interner::with_arena

use crate::interner::{fnv64_str, Symbol};
use std::collections::HashMap;
use std::sync::{Arc, RwLock};

/// log2 of the shard count; shards are picked from the string hash.
const SHARD_BITS: u32 = 4;
/// Number of independently locked shards.
const SHARD_COUNT: usize = 1 << SHARD_BITS;

/// One lock domain of the arena.
#[derive(Debug, Default)]
struct Shard {
    /// Interned strings, indexed by the symbol's local index.
    strings: Vec<Arc<str>>,
    /// Hash of the string → local indices of candidates with that hash.
    lookup: HashMap<u64, Vec<u32>>,
    /// Total text bytes resident in this shard.
    bytes: usize,
}

impl Shard {
    fn find(&self, hash: u64, text: &str) -> Option<u32> {
        self.lookup
            .get(&hash)?
            .iter()
            .copied()
            .find(|&i| &*self.strings[i as usize] == text)
    }
}

/// A process-wide, append-only string interner safe for concurrent use.
///
/// See the [module docs](self) for the sharding and encoding scheme.
#[derive(Default)]
pub struct SymbolArena {
    shards: [RwLock<Shard>; SHARD_COUNT],
}

impl SymbolArena {
    /// An empty arena.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn shard_of(hash: u64) -> usize {
        (hash as usize) & (SHARD_COUNT - 1)
    }

    fn encode(shard: usize, index: u32) -> Symbol {
        debug_assert!(index < (1 << (32 - SHARD_BITS)), "arena shard overflow");
        Symbol((index << SHARD_BITS) | shard as u32)
    }

    fn decode(sym: Symbol) -> (usize, u32) {
        ((sym.0 as usize) & (SHARD_COUNT - 1), sym.0 >> SHARD_BITS)
    }

    /// Interns `text`, returning its stable symbol. Idempotent and safe
    /// to call from any number of threads: all callers racing on the
    /// same new string agree on one symbol.
    pub fn intern(&self, text: &str) -> Symbol {
        let hash = fnv64_str(text);
        let shard_i = Self::shard_of(hash);
        {
            let shard = self.shards[shard_i].read().expect("arena shard lock");
            if let Some(i) = shard.find(hash, text) {
                return Self::encode(shard_i, i);
            }
        }
        let mut shard = self.shards[shard_i].write().expect("arena shard lock");
        // Double-check under the write lock: another thread may have
        // interned the string between our read probe and here.
        if let Some(i) = shard.find(hash, text) {
            return Self::encode(shard_i, i);
        }
        let index = u32::try_from(shard.strings.len()).expect("shard symbol space");
        shard.strings.push(Arc::from(text));
        shard.bytes += text.len();
        shard.lookup.entry(hash).or_default().push(index);
        Self::encode(shard_i, index)
    }

    /// Looks `text` up without interning it.
    #[must_use]
    pub fn get(&self, text: &str) -> Option<Symbol> {
        let hash = fnv64_str(text);
        let shard_i = Self::shard_of(hash);
        let shard = self.shards[shard_i].read().expect("arena shard lock");
        shard.find(hash, text).map(|i| Self::encode(shard_i, i))
    }

    /// Resolves a symbol minted by this arena to its shared text.
    ///
    /// # Panics
    ///
    /// Panics if `sym` was not produced by this arena.
    #[must_use]
    pub fn resolve(&self, sym: Symbol) -> Arc<str> {
        let (shard_i, index) = Self::decode(sym);
        let shard = self.shards[shard_i].read().expect("arena shard lock");
        Arc::clone(&shard.strings[index as usize])
    }

    /// Number of distinct strings interned.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("arena shard lock").strings.len())
            .sum()
    }

    /// Whether the arena holds no strings.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total text bytes resident across all shards — the storage every
    /// arena-backed interner shares instead of duplicating.
    #[must_use]
    pub fn bytes_resident(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("arena shard lock").bytes)
            .sum()
    }
}

impl std::fmt::Debug for SymbolArena {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SymbolArena")
            .field("symbols", &self.len())
            .field("bytes", &self.bytes_resident())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_deduplicates_and_round_trips() {
        let arena = SymbolArena::new();
        let a = arena.intern("android.app.Activity");
        let b = arena.intern("onCreate");
        let a2 = arena.intern("android.app.Activity");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(&*arena.resolve(a), "android.app.Activity");
        assert_eq!(&*arena.resolve(b), "onCreate");
        assert_eq!(arena.len(), 2);
        assert_eq!(
            arena.bytes_resident(),
            "android.app.Activity".len() + "onCreate".len()
        );
    }

    #[test]
    fn get_does_not_intern() {
        let arena = SymbolArena::new();
        assert_eq!(arena.get("x"), None);
        let s = arena.intern("x");
        assert_eq!(arena.get("x"), Some(s));
        assert_eq!(arena.len(), 1);
    }

    #[test]
    fn symbols_encode_their_shard() {
        let arena = SymbolArena::new();
        for i in 0..256 {
            let text = format!("sym{i}");
            let s = arena.intern(&text);
            assert_eq!(&*arena.resolve(s), text.as_str());
        }
        assert_eq!(arena.len(), 256);
    }

    #[test]
    fn concurrent_interning_agrees_on_symbols() {
        let arena = SymbolArena::new();
        let names: Vec<String> = (0..128).map(|i| format!("com.app.Class{i}")).collect();
        let per_thread: Vec<Vec<Symbol>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| scope.spawn(|| names.iter().map(|n| arena.intern(n)).collect()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for syms in &per_thread[1..] {
            assert_eq!(syms, &per_thread[0], "all threads must agree");
        }
        assert_eq!(arena.len(), names.len(), "no duplicate symbols");
    }
}
