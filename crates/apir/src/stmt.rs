//! Statements: the three-address instruction set.

use crate::ids::{AllocSiteId, CallSiteId, ClassId, FieldId, Local, MethodId};
use crate::interner::Symbol;
use std::fmt;

/// A compile-time constant value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConstValue {
    /// An integer constant.
    Int(i64),
    /// A boolean constant.
    Bool(bool),
    /// The `null` reference.
    Null,
    /// An interned string constant.
    Str(Symbol),
}

impl ConstValue {
    /// Whether two constants are definitely different values.
    ///
    /// Constants of different kinds never compare equal in the IR's type
    /// discipline, so they are treated as distinct.
    pub fn definitely_ne(self, other: ConstValue) -> bool {
        self != other
    }
}

impl fmt::Display for ConstValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConstValue::Int(v) => write!(f, "{v}"),
            ConstValue::Bool(v) => write!(f, "{v}"),
            ConstValue::Null => write!(f, "null"),
            ConstValue::Str(s) => write!(f, "{s:?}"),
        }
    }
}

/// An operand: either a local variable or an inline constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// Read a local variable.
    Local(Local),
    /// An inline constant.
    Const(ConstValue),
}

impl Operand {
    /// The local read by this operand, if any.
    pub fn as_local(self) -> Option<Local> {
        match self {
            Operand::Local(l) => Some(l),
            Operand::Const(_) => None,
        }
    }

    /// The constant carried by this operand, if any.
    pub fn as_const(self) -> Option<ConstValue> {
        match self {
            Operand::Const(c) => Some(c),
            Operand::Local(_) => None,
        }
    }
}

impl From<Local> for Operand {
    fn from(l: Local) -> Self {
        Operand::Local(l)
    }
}

impl From<ConstValue> for Operand {
    fn from(c: ConstValue) -> Self {
        Operand::Const(c)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Local(l) => write!(f, "{l}"),
            Operand::Const(c) => write!(f, "{c}"),
        }
    }
}

/// A unary operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Logical negation of a boolean.
    Not,
    /// Arithmetic negation of an integer.
    Neg,
}

/// A comparison operator (produces a boolean).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Equality.
    Eq,
    /// Inequality.
    Ne,
    /// Strictly less than.
    Lt,
    /// Less than or equal.
    Le,
}

/// A binary operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Integer addition.
    Add,
    /// Integer subtraction.
    Sub,
    /// Integer multiplication.
    Mul,
    /// Comparison producing a boolean.
    Cmp(CmpOp),
    /// Boolean conjunction.
    And,
    /// Boolean disjunction.
    Or,
}

/// The dispatch discipline of a call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InvokeKind {
    /// Virtual dispatch on the dynamic class of the receiver.
    Virtual,
    /// Static (class) method, no receiver.
    Static,
    /// Non-virtual instance call (constructors, `super` calls).
    Special,
}

/// A non-terminator statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// `dst = const`.
    Const {
        /// Destination local.
        dst: Local,
        /// The constant value.
        value: ConstValue,
    },
    /// `dst = src`.
    Move {
        /// Destination local.
        dst: Local,
        /// Source local.
        src: Local,
    },
    /// `dst = op src`.
    UnOp {
        /// Destination local.
        dst: Local,
        /// Operator.
        op: UnOp,
        /// Operand.
        src: Operand,
    },
    /// `dst = lhs op rhs`.
    BinOp {
        /// Destination local.
        dst: Local,
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
    },
    /// `dst = new C` — the only statement that allocates.
    New {
        /// Destination local.
        dst: Local,
        /// Class being instantiated.
        class: ClassId,
        /// Program-unique allocation site.
        site: AllocSiteId,
    },
    /// `dst = obj.field`.
    Load {
        /// Destination local.
        dst: Local,
        /// Base object.
        obj: Local,
        /// Field being read.
        field: FieldId,
    },
    /// `obj.field = value`.
    Store {
        /// Base object.
        obj: Local,
        /// Field being written.
        field: FieldId,
        /// Value stored.
        value: Operand,
    },
    /// `dst = Class.field` (static field read).
    StaticLoad {
        /// Destination local.
        dst: Local,
        /// Static field being read.
        field: FieldId,
    },
    /// `Class.field = value` (static field write).
    StaticStore {
        /// Static field being written.
        field: FieldId,
        /// Value stored.
        value: Operand,
    },
    /// `dst = call callee(receiver, args...)`.
    ///
    /// `callee` names the *statically resolved declaration*; virtual calls
    /// are re-dispatched against the receiver's points-to set (static
    /// analysis) or dynamic class (interpreter).
    Call {
        /// Program-unique call site.
        site: CallSiteId,
        /// Destination for the return value, if used.
        dst: Option<Local>,
        /// Dispatch discipline.
        kind: InvokeKind,
        /// Statically-named target declaration.
        callee: MethodId,
        /// Receiver (`None` for static calls).
        receiver: Option<Local>,
        /// Actual arguments (excluding the receiver).
        args: Vec<Operand>,
    },
}

impl Stmt {
    /// The local this statement defines, if any.
    pub fn def(&self) -> Option<Local> {
        match *self {
            Stmt::Const { dst, .. }
            | Stmt::Move { dst, .. }
            | Stmt::UnOp { dst, .. }
            | Stmt::BinOp { dst, .. }
            | Stmt::New { dst, .. }
            | Stmt::Load { dst, .. }
            | Stmt::StaticLoad { dst, .. } => Some(dst),
            Stmt::Call { dst, .. } => dst,
            Stmt::Store { .. } | Stmt::StaticStore { .. } => None,
        }
    }

    /// All locals this statement reads.
    pub fn uses(&self) -> Vec<Local> {
        fn push(out: &mut Vec<Local>, op: &Operand) {
            if let Operand::Local(l) = op {
                out.push(*l);
            }
        }
        let mut out = Vec::new();
        match self {
            Stmt::Const { .. } | Stmt::New { .. } | Stmt::StaticLoad { .. } => {}
            Stmt::Move { src, .. } => out.push(*src),
            Stmt::UnOp { src, .. } => push(&mut out, src),
            Stmt::BinOp { lhs, rhs, .. } => {
                push(&mut out, lhs);
                push(&mut out, rhs);
            }
            Stmt::Load { obj, .. } => out.push(*obj),
            Stmt::Store { obj, value, .. } => {
                out.push(*obj);
                push(&mut out, value);
            }
            Stmt::StaticStore { value, .. } => push(&mut out, value),
            Stmt::Call { receiver, args, .. } => {
                if let Some(r) = receiver {
                    out.push(*r);
                }
                for a in args {
                    push(&mut out, a);
                }
            }
        }
        out
    }

    /// Whether this statement is a heap access (instance or static field).
    pub fn is_heap_access(&self) -> bool {
        matches!(
            self,
            Stmt::Load { .. }
                | Stmt::Store { .. }
                | Stmt::StaticLoad { .. }
                | Stmt::StaticStore { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn def_and_uses_are_consistent() {
        let s = Stmt::BinOp {
            dst: Local(2),
            op: BinOp::Add,
            lhs: Operand::Local(Local(0)),
            rhs: Operand::Const(ConstValue::Int(1)),
        };
        assert_eq!(s.def(), Some(Local(2)));
        assert_eq!(s.uses(), vec![Local(0)]);
    }

    #[test]
    fn store_defines_nothing() {
        let s = Stmt::Store {
            obj: Local(0),
            field: FieldId(0),
            value: Operand::Local(Local(1)),
        };
        assert_eq!(s.def(), None);
        assert_eq!(s.uses(), vec![Local(0), Local(1)]);
        assert!(s.is_heap_access());
    }

    #[test]
    fn call_uses_receiver_and_args() {
        let s = Stmt::Call {
            site: CallSiteId(0),
            dst: Some(Local(5)),
            kind: InvokeKind::Virtual,
            callee: MethodId(0),
            receiver: Some(Local(1)),
            args: vec![Operand::Local(Local(2)), Operand::Const(ConstValue::Null)],
        };
        assert_eq!(s.def(), Some(Local(5)));
        assert_eq!(s.uses(), vec![Local(1), Local(2)]);
        assert!(!s.is_heap_access());
    }

    #[test]
    fn operand_conversions() {
        let o: Operand = Local(3).into();
        assert_eq!(o.as_local(), Some(Local(3)));
        let c: Operand = ConstValue::Bool(true).into();
        assert_eq!(c.as_const(), Some(ConstValue::Bool(true)));
        assert!(c.as_local().is_none());
    }

    #[test]
    fn distinct_constants_are_definitely_ne() {
        assert!(ConstValue::Int(1).definitely_ne(ConstValue::Int(2)));
        assert!(ConstValue::Bool(true).definitely_ne(ConstValue::Bool(false)));
        assert!(!ConstValue::Null.definitely_ne(ConstValue::Null));
        assert!(ConstValue::Int(0).definitely_ne(ConstValue::Null));
    }
}
