//! # apir — an Android-app intermediate representation
//!
//! `apir` is the program-representation substrate of the SIERRA
//! reproduction. It plays the role that Dalvik bytecode plus WALA's IR play
//! in the original system: a typed, register-based, three-address
//! representation of an Android app, with explicit allocation sites, call
//! sites, field accesses, and per-method control-flow graphs.
//!
//! The crate deliberately knows nothing about Android semantics: classes and
//! methods carry *names* and an [`Origin`] (app / framework / library), and
//! the `android-model` crate recognizes framework API calls by name, exactly
//! as bytecode-level tools do.
//!
//! ## Example
//!
//! ```
//! use apir::{ProgramBuilder, Origin, ConstValue, Operand, Type};
//!
//! let mut pb = ProgramBuilder::new();
//! let object = pb.class("java.lang.Object", Origin::Framework).build();
//! let mut cb = pb.class("com.example.Counter", Origin::App);
//! cb.set_super(object);
//! let field = cb.field("count", Type::Int);
//! let class = cb.build();
//!
//! let mut mb = pb.method(class, "tick");
//! mb.set_param_count(1); // `this`
//! let this = mb.param(0);
//! let one = mb.fresh_local();
//! mb.const_(one, ConstValue::Int(1));
//! mb.store(this, field, Operand::Local(one));
//! mb.ret(None);
//! let _tick = mb.finish();
//!
//! let program = pb.finish();
//! assert!(program.validate().is_ok());
//! ```

mod arena;
mod builder;
mod class;
pub mod dataflow;
mod dom;
mod edges;
mod ids;
mod interner;
pub mod local_defs;
mod method;
mod print;
mod program;
#[cfg(test)]
mod proptests;
mod stmt;
mod ty;
mod validate;

pub use arena::SymbolArena;
pub use builder::{ClassBuilder, MethodBuilder, ProgramBuilder};
pub use class::{Class, Field, Origin};
pub use dom::Dominators;
pub use edges::{BranchEdge, InfeasibleEdges};
pub use ids::{AllocSiteId, BlockId, CallSiteId, ClassId, FieldId, Local, MethodId, StmtAddr};
pub use interner::{Interner, Symbol};
pub use method::{BasicBlock, Cfg, Method, Terminator};
pub use print::ProgramPrinter;
pub use program::Program;
pub use stmt::{BinOp, CmpOp, ConstValue, InvokeKind, Operand, Stmt, UnOp};
pub use ty::Type;
pub use validate::ValidateError;
