//! Methods, basic blocks, and terminators.

use crate::ids::{BlockId, ClassId, Local, MethodId, StmtAddr};
use crate::interner::Symbol;
use crate::stmt::{Operand, Stmt};
use crate::ty::Type;

/// The control transfer ending a basic block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Terminator {
    /// Unconditional jump.
    Goto(BlockId),
    /// Two-way branch on a boolean operand.
    If {
        /// Branch condition.
        cond: Operand,
        /// Successor when the condition is true.
        then_bb: BlockId,
        /// Successor when the condition is false.
        else_bb: BlockId,
    },
    /// Nondeterministic choice among successors.
    ///
    /// Used by generated harnesses to model externally-orchestrated control
    /// flow (`while (*) switch (*) { ... }` in the paper's Figure 4).
    NonDet(Vec<BlockId>),
    /// Return from the method.
    Return(Option<Operand>),
}

impl Terminator {
    /// The successor blocks of this terminator.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Goto(b) => vec![*b],
            Terminator::If {
                then_bb, else_bb, ..
            } => vec![*then_bb, *else_bb],
            Terminator::NonDet(bs) => bs.clone(),
            Terminator::Return(_) => Vec::new(),
        }
    }
}

/// A basic block: straight-line statements plus one terminator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BasicBlock {
    /// The block's statements, in execution order.
    pub stmts: Vec<Stmt>,
    /// The block's terminator.
    pub terminator: Terminator,
}

impl BasicBlock {
    /// Creates a block ending in `Return(None)`; the builder rewrites the
    /// terminator as instructions are emitted.
    pub fn new() -> Self {
        Self {
            stmts: Vec::new(),
            terminator: Terminator::Return(None),
        }
    }
}

impl Default for BasicBlock {
    fn default() -> Self {
        Self::new()
    }
}

/// Flat (CSR-style) successor/predecessor storage for one method's CFG.
///
/// Instead of one heap-allocated `Vec<BlockId>` per block per query
/// (what [`Terminator::successors`] and the old predecessor map cost),
/// both adjacency directions live in two flat arrays indexed by an
/// offset table, so dominator computation, dataflow solving, and
/// `local_defs` walks traverse cache-linear memory and never allocate.
///
/// A `Cfg` is built once when a method body is finished
/// ([`crate::MethodBuilder::finish`]); terminators are never rewritten
/// afterwards (statement insertion via the builder's reopen path leaves
/// block structure intact), so the arrays stay valid for the method's
/// lifetime.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Cfg {
    /// Concatenated successor lists, in terminator order per block.
    succ: Vec<BlockId>,
    /// `succ_off[b]..succ_off[b+1]` indexes block `b`'s successors.
    succ_off: Vec<u32>,
    /// Concatenated predecessor lists, ordered by source block id.
    pred: Vec<BlockId>,
    /// `pred_off[b]..pred_off[b+1]` indexes block `b`'s predecessors.
    pred_off: Vec<u32>,
}

/// Calls `f` for each successor of `term` in terminator order, without
/// allocating.
fn for_each_successor(term: &Terminator, mut f: impl FnMut(BlockId)) {
    match term {
        Terminator::Goto(b) => f(*b),
        Terminator::If {
            then_bb, else_bb, ..
        } => {
            f(*then_bb);
            f(*else_bb);
        }
        Terminator::NonDet(bs) => bs.iter().copied().for_each(f),
        Terminator::Return(_) => {}
    }
}

impl Cfg {
    /// Builds the flat adjacency arrays from finished blocks.
    ///
    /// Successors keep terminator order (so reverse-post-order walks
    /// match a per-terminator traversal exactly); predecessors are
    /// ordered by source block id, the same order the old per-block
    /// `Vec` map produced. Parallel edges (an `If` with equal targets)
    /// are kept, matching [`Terminator::successors`]. Edges to
    /// out-of-range blocks are dropped — [`crate::Program::validate`]
    /// reports those from the terminators themselves.
    pub fn build(blocks: &[BasicBlock]) -> Self {
        let n = blocks.len();
        let mut succ_off = vec![0u32; n + 1];
        let mut pred_off = vec![0u32; n + 1];
        for (i, block) in blocks.iter().enumerate() {
            for_each_successor(&block.terminator, |s| {
                if s.index() < n {
                    succ_off[i + 1] += 1;
                    pred_off[s.index() + 1] += 1;
                }
            });
        }
        for i in 0..n {
            succ_off[i + 1] += succ_off[i];
            pred_off[i + 1] += pred_off[i];
        }
        let total = succ_off[n] as usize;
        let mut succ = vec![BlockId(0); total];
        let mut pred = vec![BlockId(0); total];
        let mut succ_cur: Vec<u32> = succ_off[..n].to_vec();
        let mut pred_cur: Vec<u32> = pred_off[..n].to_vec();
        for (i, block) in blocks.iter().enumerate() {
            for_each_successor(&block.terminator, |s| {
                if s.index() < n {
                    succ[succ_cur[i] as usize] = s;
                    succ_cur[i] += 1;
                    pred[pred_cur[s.index()] as usize] = BlockId::from_index(i);
                    pred_cur[s.index()] += 1;
                }
            });
        }
        Self {
            succ,
            succ_off,
            pred,
            pred_off,
        }
    }

    /// The successors of `b`, in terminator order.
    pub fn succs(&self, b: BlockId) -> &[BlockId] {
        let (lo, hi) = (
            self.succ_off[b.index()] as usize,
            self.succ_off[b.index() + 1] as usize,
        );
        &self.succ[lo..hi]
    }

    /// The predecessors of `b`, ordered by source block id.
    pub fn preds(&self, b: BlockId) -> &[BlockId] {
        let (lo, hi) = (
            self.pred_off[b.index()] as usize,
            self.pred_off[b.index() + 1] as usize,
        );
        &self.pred[lo..hi]
    }
}

/// A method: signature plus (unless abstract) a CFG of basic blocks.
#[derive(Debug, Clone)]
pub struct Method {
    /// This method's id.
    pub id: MethodId,
    /// Declaring class.
    pub class: ClassId,
    /// Simple (unqualified) name, e.g. `onCreate`.
    pub name: Symbol,
    /// Number of parameters, including the receiver for instance methods.
    pub param_count: u32,
    /// Return type, if the method returns a value.
    pub ret: Option<Type>,
    /// Whether the method is static (no receiver).
    pub is_static: bool,
    /// Whether the method has no body (abstract or opaque framework stub).
    pub is_abstract: bool,
    /// Total number of locals, `>= param_count`.
    pub local_count: u32,
    /// Basic blocks; block 0 is the entry.
    pub blocks: Vec<BasicBlock>,
    /// Flat successor/predecessor arrays over `blocks`, built when the
    /// body is finished (empty for abstract methods).
    pub cfg: Cfg,
}

impl Method {
    /// The entry block id.
    pub fn entry(&self) -> BlockId {
        BlockId(0)
    }

    /// The block with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn block(&self, id: BlockId) -> &BasicBlock {
        &self.blocks[id.index()]
    }

    /// Iterates over `(BlockId, &BasicBlock)` pairs.
    pub fn iter_blocks(&self) -> impl Iterator<Item = (BlockId, &BasicBlock)> {
        self.blocks
            .iter()
            .enumerate()
            .map(|(i, b)| (BlockId::from_index(i), b))
    }

    /// Iterates over every statement with its address.
    pub fn iter_stmts(&self) -> impl Iterator<Item = (StmtAddr, &Stmt)> {
        let method = self.id;
        self.iter_blocks().flat_map(move |(bid, block)| {
            block
                .stmts
                .iter()
                .enumerate()
                .map(move |(i, s)| (StmtAddr::new(method, bid, i as u32), s))
        })
    }

    /// The statement at `addr`, or `None` if `addr` points at a terminator
    /// or is out of range.
    pub fn stmt_at(&self, addr: StmtAddr) -> Option<&Stmt> {
        debug_assert_eq!(addr.method, self.id);
        self.blocks
            .get(addr.block.index())?
            .stmts
            .get(addr.stmt as usize)
    }

    /// The successors of `b` as a borrowed slice of the method's
    /// [`Cfg`] — the allocation-free form of
    /// `self.block(b).terminator.successors()`.
    pub fn succs(&self, b: BlockId) -> &[BlockId] {
        self.cfg.succs(b)
    }

    /// The predecessors of `b`, ordered by source block id, as a
    /// borrowed slice of the method's [`Cfg`].
    pub fn preds(&self, b: BlockId) -> &[BlockId] {
        self.cfg.preds(b)
    }

    /// Predecessor map: `preds[b]` lists blocks with an edge into `b`.
    ///
    /// Allocates one `Vec` per block; prefer [`Method::preds`] on hot
    /// paths.
    pub fn predecessors(&self) -> Vec<Vec<BlockId>> {
        (0..self.blocks.len())
            .map(|i| self.preds(BlockId::from_index(i)).to_vec())
            .collect()
    }

    /// Whether the method has any body to analyze.
    pub fn has_body(&self) -> bool {
        !self.is_abstract
    }

    /// The receiver local (`this`), if this is an instance method.
    pub fn this(&self) -> Option<Local> {
        if self.is_static {
            None
        } else {
            Some(Local(0))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Method {
        let mut b0 = BasicBlock::new();
        b0.stmts.push(Stmt::Const {
            dst: Local(1),
            value: crate::ConstValue::Int(1),
        });
        b0.terminator = Terminator::If {
            cond: Operand::Local(Local(1)),
            then_bb: BlockId(1),
            else_bb: BlockId(2),
        };
        let mut b1 = BasicBlock::new();
        b1.terminator = Terminator::Goto(BlockId(2));
        let b2 = BasicBlock::new();
        let blocks = vec![b0, b1, b2];
        Method {
            id: MethodId(0),
            class: ClassId(0),
            name: Symbol(0),
            param_count: 1,
            ret: None,
            is_static: false,
            is_abstract: false,
            local_count: 2,
            cfg: Cfg::build(&blocks),
            blocks,
        }
    }

    #[test]
    fn successors_and_predecessors_agree() {
        let m = sample();
        let preds = m.predecessors();
        assert_eq!(preds[0], vec![]);
        assert_eq!(preds[1], vec![BlockId(0)]);
        assert_eq!(preds[2], vec![BlockId(0), BlockId(1)]);
    }

    #[test]
    fn csr_slices_match_terminator_successors() {
        let m = sample();
        for (bid, block) in m.iter_blocks() {
            assert_eq!(m.succs(bid), block.terminator.successors().as_slice());
        }
        assert_eq!(m.preds(BlockId(0)), &[] as &[BlockId]);
        assert_eq!(m.preds(BlockId(2)), &[BlockId(0), BlockId(1)]);
        // Parallel edges (an `If` with equal arms) are preserved.
        let mut b0 = BasicBlock::new();
        b0.terminator = Terminator::If {
            cond: Operand::Local(Local(0)),
            then_bb: BlockId(1),
            else_bb: BlockId(1),
        };
        let cfg = Cfg::build(&[b0, BasicBlock::new()]);
        assert_eq!(cfg.succs(BlockId(0)), &[BlockId(1), BlockId(1)]);
        assert_eq!(cfg.preds(BlockId(1)), &[BlockId(0), BlockId(0)]);
    }

    #[test]
    fn iter_stmts_yields_addresses() {
        let m = sample();
        let all: Vec<_> = m.iter_stmts().collect();
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].0, StmtAddr::new(MethodId(0), BlockId(0), 0));
        assert!(m.stmt_at(all[0].0).is_some());
        assert!(m
            .stmt_at(StmtAddr::new(MethodId(0), BlockId(1), 0))
            .is_none());
    }

    #[test]
    fn instance_method_has_this() {
        let m = sample();
        assert_eq!(m.this(), Some(Local(0)));
        assert!(m.has_body());
    }

    #[test]
    fn return_has_no_successors() {
        assert!(Terminator::Return(None).successors().is_empty());
        assert_eq!(
            Terminator::NonDet(vec![BlockId(0), BlockId(1)])
                .successors()
                .len(),
            2
        );
    }
}
