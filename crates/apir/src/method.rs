//! Methods, basic blocks, and terminators.

use crate::ids::{BlockId, ClassId, Local, MethodId, StmtAddr};
use crate::interner::Symbol;
use crate::stmt::{Operand, Stmt};
use crate::ty::Type;

/// The control transfer ending a basic block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Terminator {
    /// Unconditional jump.
    Goto(BlockId),
    /// Two-way branch on a boolean operand.
    If {
        /// Branch condition.
        cond: Operand,
        /// Successor when the condition is true.
        then_bb: BlockId,
        /// Successor when the condition is false.
        else_bb: BlockId,
    },
    /// Nondeterministic choice among successors.
    ///
    /// Used by generated harnesses to model externally-orchestrated control
    /// flow (`while (*) switch (*) { ... }` in the paper's Figure 4).
    NonDet(Vec<BlockId>),
    /// Return from the method.
    Return(Option<Operand>),
}

impl Terminator {
    /// The successor blocks of this terminator.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Goto(b) => vec![*b],
            Terminator::If {
                then_bb, else_bb, ..
            } => vec![*then_bb, *else_bb],
            Terminator::NonDet(bs) => bs.clone(),
            Terminator::Return(_) => Vec::new(),
        }
    }
}

/// A basic block: straight-line statements plus one terminator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BasicBlock {
    /// The block's statements, in execution order.
    pub stmts: Vec<Stmt>,
    /// The block's terminator.
    pub terminator: Terminator,
}

impl BasicBlock {
    /// Creates a block ending in `Return(None)`; the builder rewrites the
    /// terminator as instructions are emitted.
    pub fn new() -> Self {
        Self {
            stmts: Vec::new(),
            terminator: Terminator::Return(None),
        }
    }
}

impl Default for BasicBlock {
    fn default() -> Self {
        Self::new()
    }
}

/// A method: signature plus (unless abstract) a CFG of basic blocks.
#[derive(Debug, Clone)]
pub struct Method {
    /// This method's id.
    pub id: MethodId,
    /// Declaring class.
    pub class: ClassId,
    /// Simple (unqualified) name, e.g. `onCreate`.
    pub name: Symbol,
    /// Number of parameters, including the receiver for instance methods.
    pub param_count: u32,
    /// Return type, if the method returns a value.
    pub ret: Option<Type>,
    /// Whether the method is static (no receiver).
    pub is_static: bool,
    /// Whether the method has no body (abstract or opaque framework stub).
    pub is_abstract: bool,
    /// Total number of locals, `>= param_count`.
    pub local_count: u32,
    /// Basic blocks; block 0 is the entry.
    pub blocks: Vec<BasicBlock>,
}

impl Method {
    /// The entry block id.
    pub fn entry(&self) -> BlockId {
        BlockId(0)
    }

    /// The block with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn block(&self, id: BlockId) -> &BasicBlock {
        &self.blocks[id.index()]
    }

    /// Iterates over `(BlockId, &BasicBlock)` pairs.
    pub fn iter_blocks(&self) -> impl Iterator<Item = (BlockId, &BasicBlock)> {
        self.blocks
            .iter()
            .enumerate()
            .map(|(i, b)| (BlockId::from_index(i), b))
    }

    /// Iterates over every statement with its address.
    pub fn iter_stmts(&self) -> impl Iterator<Item = (StmtAddr, &Stmt)> {
        let method = self.id;
        self.iter_blocks().flat_map(move |(bid, block)| {
            block
                .stmts
                .iter()
                .enumerate()
                .map(move |(i, s)| (StmtAddr::new(method, bid, i as u32), s))
        })
    }

    /// The statement at `addr`, or `None` if `addr` points at a terminator
    /// or is out of range.
    pub fn stmt_at(&self, addr: StmtAddr) -> Option<&Stmt> {
        debug_assert_eq!(addr.method, self.id);
        self.blocks
            .get(addr.block.index())?
            .stmts
            .get(addr.stmt as usize)
    }

    /// Predecessor map: `preds[b]` lists blocks with an edge into `b`.
    pub fn predecessors(&self) -> Vec<Vec<BlockId>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for (bid, block) in self.iter_blocks() {
            for succ in block.terminator.successors() {
                preds[succ.index()].push(bid);
            }
        }
        preds
    }

    /// Whether the method has any body to analyze.
    pub fn has_body(&self) -> bool {
        !self.is_abstract
    }

    /// The receiver local (`this`), if this is an instance method.
    pub fn this(&self) -> Option<Local> {
        if self.is_static {
            None
        } else {
            Some(Local(0))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Method {
        let mut b0 = BasicBlock::new();
        b0.stmts.push(Stmt::Const {
            dst: Local(1),
            value: crate::ConstValue::Int(1),
        });
        b0.terminator = Terminator::If {
            cond: Operand::Local(Local(1)),
            then_bb: BlockId(1),
            else_bb: BlockId(2),
        };
        let mut b1 = BasicBlock::new();
        b1.terminator = Terminator::Goto(BlockId(2));
        let b2 = BasicBlock::new();
        Method {
            id: MethodId(0),
            class: ClassId(0),
            name: Symbol(0),
            param_count: 1,
            ret: None,
            is_static: false,
            is_abstract: false,
            local_count: 2,
            blocks: vec![b0, b1, b2],
        }
    }

    #[test]
    fn successors_and_predecessors_agree() {
        let m = sample();
        let preds = m.predecessors();
        assert_eq!(preds[0], vec![]);
        assert_eq!(preds[1], vec![BlockId(0)]);
        assert_eq!(preds[2], vec![BlockId(0), BlockId(1)]);
    }

    #[test]
    fn iter_stmts_yields_addresses() {
        let m = sample();
        let all: Vec<_> = m.iter_stmts().collect();
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].0, StmtAddr::new(MethodId(0), BlockId(0), 0));
        assert!(m.stmt_at(all[0].0).is_some());
        assert!(m
            .stmt_at(StmtAddr::new(MethodId(0), BlockId(1), 0))
            .is_none());
    }

    #[test]
    fn instance_method_has_this() {
        let m = sample();
        assert_eq!(m.this(), Some(Local(0)));
        assert!(m.has_body());
    }

    #[test]
    fn return_has_no_successors() {
        assert!(Terminator::Return(None).successors().is_empty());
        assert_eq!(
            Terminator::NonDet(vec![BlockId(0), BlockId(1)])
                .successors()
                .len(),
            2
        );
    }
}
