//! Builders for programs, classes, and method bodies.
//!
//! A [`ProgramBuilder`] owns all tables while construction is in flight.
//! [`ClassBuilder`] and [`MethodBuilder`] mutably borrow it, mint ids
//! eagerly (so hierarchies and call targets can be wired up incrementally),
//! and write their finished entity back on `build`/`finish`.

use crate::arena::SymbolArena;
use crate::class::{Class, Field, Origin};
use crate::ids::{AllocSiteId, BlockId, CallSiteId, ClassId, FieldId, Local, MethodId, StmtAddr};
use crate::interner::{Interner, Symbol};
use crate::method::{BasicBlock, Cfg, Method, Terminator};
use crate::program::Program;
use crate::stmt::{BinOp, ConstValue, InvokeKind, Operand, Stmt, UnOp};
use crate::ty::Type;
use std::collections::HashMap;

/// Incrementally constructs a [`Program`].
///
/// # Example
///
/// ```
/// use apir::{ProgramBuilder, Origin};
/// let mut pb = ProgramBuilder::new();
/// let root = pb.class("java.lang.Object", Origin::Framework).build();
/// let program = pb.finish();
/// assert_eq!(program.classes().len(), 1);
/// assert_eq!(program.class_name(root), "java.lang.Object");
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    interner: Interner,
    classes: Vec<Class>,
    methods: Vec<Method>,
    fields: Vec<Field>,
    alloc_sites: Vec<StmtAddr>,
    call_sites: Vec<StmtAddr>,
    class_by_name: HashMap<Symbol, ClassId>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty builder whose interner is backed by a shared
    /// [`SymbolArena`], so class/method/field symbols are stable across
    /// every program built over the same arena (corpus runs, the serve
    /// loop).
    pub fn with_arena(arena: std::sync::Arc<SymbolArena>) -> Self {
        Self {
            interner: Interner::with_arena(arena),
            ..Self::default()
        }
    }

    /// Interns a string.
    pub fn intern(&mut self, text: &str) -> Symbol {
        self.interner.intern(text)
    }

    /// Begins a new class; the class id is already valid while building.
    ///
    /// # Panics
    ///
    /// Panics if a class with the same name already exists.
    pub fn class<'a>(&'a mut self, name: &str, origin: Origin) -> ClassBuilder<'a> {
        let sym = self.interner.intern(name);
        assert!(
            !self.class_by_name.contains_key(&sym),
            "duplicate class name: {name}"
        );
        let id = ClassId::from_index(self.classes.len());
        self.classes.push(Class {
            id,
            name: sym,
            super_class: None,
            interfaces: Vec::new(),
            methods: Vec::new(),
            fields: Vec::new(),
            is_interface: false,
            origin,
        });
        self.class_by_name.insert(sym, id);
        ClassBuilder { pb: self, id }
    }

    /// Begins a new method body on `class`; the method id is already valid
    /// while building (so recursive calls can target it). Until
    /// [`MethodBuilder::finish`] runs, the method is recorded as abstract.
    pub fn method<'a>(&'a mut self, class: ClassId, name: &str) -> MethodBuilder<'a> {
        let id = self.reserve_method(class, name, 0, true);
        MethodBuilder {
            pb: self,
            id,
            param_count: 0,
            local_count: 0,
            ret: None,
            is_static: false,
            blocks: vec![BasicBlock::new()],
            cur: BlockId(0),
        }
    }

    /// Declares a bodyless (abstract / opaque framework) method.
    pub fn abstract_method(&mut self, class: ClassId, name: &str, param_count: u32) -> MethodId {
        self.reserve_method(class, name, param_count, true)
    }

    /// Opens a [`MethodBuilder`] that fills a previously reserved
    /// (currently bodyless) method — used by two-pass frontends that must
    /// mint all method ids before assembling any body.
    ///
    /// # Panics
    ///
    /// Panics if the method already has a body.
    pub fn fill_method(&mut self, id: MethodId) -> MethodBuilder<'_> {
        assert!(
            self.methods[id.index()].is_abstract,
            "method {id} already has a body"
        );
        let param_count = self.methods[id.index()].param_count;
        MethodBuilder {
            pb: self,
            id,
            param_count,
            local_count: param_count,
            ret: None,
            is_static: false,
            blocks: vec![BasicBlock::new()],
            cur: BlockId(0),
        }
    }

    /// Sets (or replaces) the superclass of an already-declared class.
    pub fn set_super_of(&mut self, class: ClassId, super_class: ClassId) {
        self.classes[class.index()].super_class = Some(super_class);
    }

    /// Adds an implemented interface to an already-declared class.
    pub fn add_interface_to(&mut self, class: ClassId, iface: ClassId) {
        self.classes[class.index()].interfaces.push(iface);
    }

    /// Marks an already-declared class as an interface.
    pub fn set_interface_of(&mut self, class: ClassId) {
        self.classes[class.index()].is_interface = true;
    }

    /// The declared superclass of a class under construction.
    pub fn super_class_of(&self, class: ClassId) -> Option<ClassId> {
        self.classes[class.index()].super_class
    }

    /// Whether `sub` is `sup` or transitively extends/implements it, over
    /// the classes declared so far.
    pub fn is_subtype_now(&self, sub: ClassId, sup: ClassId) -> bool {
        if sub == sup {
            return true;
        }
        let c = &self.classes[sub.index()];
        if let Some(s) = c.super_class {
            if self.is_subtype_now(s, sup) {
                return true;
            }
        }
        c.interfaces.iter().any(|&i| self.is_subtype_now(i, sup))
    }

    /// The declared type of a field under construction.
    pub fn field_type_of(&self, field: FieldId) -> Type {
        self.fields[field.index()].ty
    }

    /// The declared return type of a method under construction.
    pub fn ret_type_of(&self, method: MethodId) -> Option<Type> {
        self.methods[method.index()].ret
    }

    fn reserve_method(
        &mut self,
        class: ClassId,
        name: &str,
        param_count: u32,
        is_abstract: bool,
    ) -> MethodId {
        let sym = self.interner.intern(name);
        let id = MethodId::from_index(self.methods.len());
        self.methods.push(Method {
            id,
            class,
            name: sym,
            param_count,
            ret: None,
            is_static: false,
            is_abstract,
            local_count: param_count,
            blocks: Vec::new(),
            cfg: Cfg::default(),
        });
        self.classes[class.index()].methods.push(id);
        id
    }

    /// Looks up a class id by name, if already declared.
    pub fn find_class(&self, name: &str) -> Option<ClassId> {
        let sym = self.interner.get(name)?;
        self.class_by_name.get(&sym).copied()
    }

    /// Looks up a method declared directly on `class` by name.
    pub fn find_method(&self, class: ClassId, name: &str) -> Option<MethodId> {
        let sym = self.interner.get(name)?;
        self.classes[class.index()]
            .methods
            .iter()
            .copied()
            .find(|&m| self.methods[m.index()].name == sym)
    }

    /// The declared parameter count of a (possibly still in-flight) method.
    pub fn param_count(&self, m: MethodId) -> u32 {
        self.methods[m.index()].param_count
    }

    /// Looks up a field declared directly on `class` by name.
    pub fn find_field(&self, class: ClassId, name: &str) -> Option<FieldId> {
        let sym = self.interner.get(name)?;
        self.classes[class.index()]
            .fields
            .iter()
            .copied()
            .find(|&f| self.fields[f.index()].name == sym)
    }

    /// Adds a field to an already-built class.
    ///
    /// Harness generation uses this to attach synthetic static fields to
    /// the `$Harness` class after reopening a finished program.
    pub fn add_field(&mut self, class: ClassId, name: &str, ty: Type, is_static: bool) -> FieldId {
        let sym = self.interner.intern(name);
        let fid = FieldId::from_index(self.fields.len());
        self.fields.push(Field {
            id: fid,
            class,
            name: sym,
            ty,
            is_static,
        });
        self.classes[class.index()].fields.push(fid);
        fid
    }

    /// Inserts `stmt` immediately after the statement at `addr`, fixing up
    /// every allocation-site and call-site address that shifts.
    ///
    /// The inserted statement must not itself be a `New` or `Call` (those
    /// need site ids minted by a [`MethodBuilder`]).
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range or `stmt` requires a site id.
    pub fn insert_stmt_after(&mut self, addr: StmtAddr, stmt: Stmt) {
        assert!(
            !matches!(stmt, Stmt::New { .. } | Stmt::Call { .. }),
            "insert_stmt_after cannot mint site ids"
        );
        let method = &mut self.methods[addr.method.index()];
        let block = &mut method.blocks[addr.block.index()];
        let at = addr.stmt as usize + 1;
        assert!(at <= block.stmts.len(), "insertion point out of range");
        block.stmts.insert(at, stmt);
        let fix = |sites: &mut Vec<StmtAddr>| {
            for s in sites.iter_mut() {
                if s.method == addr.method && s.block == addr.block && s.stmt as usize >= at {
                    s.stmt += 1;
                }
            }
        };
        fix(&mut self.alloc_sites);
        fix(&mut self.call_sites);
    }

    /// Finalizes the program.
    pub fn finish(self) -> Program {
        Program {
            interner: self.interner,
            classes: self.classes,
            methods: self.methods,
            fields: self.fields,
            alloc_sites: self.alloc_sites,
            call_sites: self.call_sites,
            class_by_name: self.class_by_name,
        }
    }
}

impl From<Program> for ProgramBuilder {
    /// Reopens a finished program for further construction (harness
    /// generation appends synthetic classes and methods to analyzed apps).
    fn from(p: Program) -> Self {
        Self {
            interner: p.interner,
            classes: p.classes,
            methods: p.methods,
            fields: p.fields,
            alloc_sites: p.alloc_sites,
            call_sites: p.call_sites,
            class_by_name: p.class_by_name,
        }
    }
}

/// Builds one class. Created by [`ProgramBuilder::class`].
#[derive(Debug)]
pub struct ClassBuilder<'a> {
    pb: &'a mut ProgramBuilder,
    id: ClassId,
}

impl<'a> ClassBuilder<'a> {
    /// The id of the class under construction.
    pub fn id(&self) -> ClassId {
        self.id
    }

    /// Sets the superclass.
    pub fn set_super(&mut self, super_class: ClassId) -> &mut Self {
        self.pb.classes[self.id.index()].super_class = Some(super_class);
        self
    }

    /// Adds an implemented interface.
    pub fn add_interface(&mut self, iface: ClassId) -> &mut Self {
        self.pb.classes[self.id.index()].interfaces.push(iface);
        self
    }

    /// Marks the class as an interface.
    pub fn set_interface(&mut self) -> &mut Self {
        self.pb.classes[self.id.index()].is_interface = true;
        self
    }

    /// Declares an instance field.
    pub fn field(&mut self, name: &str, ty: Type) -> FieldId {
        self.add_field(name, ty, false)
    }

    /// Declares a static field.
    pub fn static_field(&mut self, name: &str, ty: Type) -> FieldId {
        self.add_field(name, ty, true)
    }

    fn add_field(&mut self, name: &str, ty: Type, is_static: bool) -> FieldId {
        let sym = self.pb.interner.intern(name);
        let fid = FieldId::from_index(self.pb.fields.len());
        self.pb.fields.push(Field {
            id: fid,
            class: self.id,
            name: sym,
            ty,
            is_static,
        });
        self.pb.classes[self.id.index()].fields.push(fid);
        fid
    }

    /// Finishes the class, returning its id.
    pub fn build(self) -> ClassId {
        self.id
    }
}

/// Builds one method body. Created by [`ProgramBuilder::method`].
///
/// The builder starts in block `bb0` (the entry). Statements are appended to
/// the *current* block; terminator helpers set the current block's
/// terminator. Use [`MethodBuilder::new_block`] / [`MethodBuilder::switch_to`]
/// to shape the CFG.
#[derive(Debug)]
pub struct MethodBuilder<'a> {
    pb: &'a mut ProgramBuilder,
    id: MethodId,
    param_count: u32,
    local_count: u32,
    ret: Option<Type>,
    is_static: bool,
    blocks: Vec<BasicBlock>,
    cur: BlockId,
}

impl<'a> MethodBuilder<'a> {
    /// The id of the method under construction.
    pub fn id(&self) -> MethodId {
        self.id
    }

    /// Access to the owning program builder (to intern names, look up ids).
    pub fn program(&mut self) -> &mut ProgramBuilder {
        self.pb
    }

    /// Declares the number of parameters (locals `0..n`). For instance
    /// methods local 0 is `this`.
    pub fn set_param_count(&mut self, n: u32) -> &mut Self {
        self.param_count = n;
        self.local_count = self.local_count.max(n);
        self
    }

    /// Marks the method static.
    pub fn set_static(&mut self) -> &mut Self {
        self.is_static = true;
        self
    }

    /// Declares the return type.
    pub fn set_ret(&mut self, ty: Type) -> &mut Self {
        self.ret = Some(ty);
        self
    }

    /// The `i`-th parameter local.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn param(&self, i: u32) -> Local {
        assert!(i < self.param_count, "parameter {i} out of range");
        Local(i)
    }

    /// Allocates a fresh local.
    pub fn fresh_local(&mut self) -> Local {
        let l = Local(self.local_count);
        self.local_count += 1;
        l
    }

    /// Creates a new, empty block (does not switch to it).
    pub fn new_block(&mut self) -> BlockId {
        let id = BlockId::from_index(self.blocks.len());
        self.blocks.push(BasicBlock::new());
        id
    }

    /// Makes `block` the current emission target.
    pub fn switch_to(&mut self, block: BlockId) -> &mut Self {
        assert!(block.index() < self.blocks.len(), "unknown block {block}");
        self.cur = block;
        self
    }

    /// The current block.
    pub fn current_block(&self) -> BlockId {
        self.cur
    }

    fn push(&mut self, stmt: Stmt) -> StmtAddr {
        let addr = StmtAddr::new(
            self.id,
            self.cur,
            self.blocks[self.cur.index()].stmts.len() as u32,
        );
        self.blocks[self.cur.index()].stmts.push(stmt);
        addr
    }

    /// Emits `dst = value`.
    pub fn const_(&mut self, dst: Local, value: ConstValue) -> &mut Self {
        self.push(Stmt::Const { dst, value });
        self
    }

    /// Emits `dst = src`.
    pub fn move_(&mut self, dst: Local, src: Local) -> &mut Self {
        self.push(Stmt::Move { dst, src });
        self
    }

    /// Emits `dst = op src`.
    pub fn un_op(&mut self, dst: Local, op: UnOp, src: impl Into<Operand>) -> &mut Self {
        self.push(Stmt::UnOp {
            dst,
            op,
            src: src.into(),
        });
        self
    }

    /// Emits `dst = lhs op rhs`.
    pub fn bin_op(
        &mut self,
        dst: Local,
        op: BinOp,
        lhs: impl Into<Operand>,
        rhs: impl Into<Operand>,
    ) -> &mut Self {
        self.push(Stmt::BinOp {
            dst,
            op,
            lhs: lhs.into(),
            rhs: rhs.into(),
        });
        self
    }

    /// Emits `dst = new class`, returning the fresh allocation site.
    pub fn new_(&mut self, dst: Local, class: ClassId) -> AllocSiteId {
        let site = AllocSiteId::from_index(self.pb.alloc_sites.len());
        // Reserve the slot, then fill the address in via push.
        self.pb
            .alloc_sites
            .push(StmtAddr::new(self.id, self.cur, 0));
        let addr = self.push(Stmt::New { dst, class, site });
        self.pb.alloc_sites[site.index()] = addr;
        site
    }

    /// Emits `dst = obj.field`.
    pub fn load(&mut self, dst: Local, obj: Local, field: FieldId) -> &mut Self {
        self.push(Stmt::Load { dst, obj, field });
        self
    }

    /// Emits `obj.field = value`.
    pub fn store(&mut self, obj: Local, field: FieldId, value: impl Into<Operand>) -> &mut Self {
        self.push(Stmt::Store {
            obj,
            field,
            value: value.into(),
        });
        self
    }

    /// Emits `dst = Class.field`.
    pub fn static_load(&mut self, dst: Local, field: FieldId) -> &mut Self {
        self.push(Stmt::StaticLoad { dst, field });
        self
    }

    /// Emits `Class.field = value`.
    pub fn static_store(&mut self, field: FieldId, value: impl Into<Operand>) -> &mut Self {
        self.push(Stmt::StaticStore {
            field,
            value: value.into(),
        });
        self
    }

    /// Emits a call, returning the fresh call site.
    pub fn call(
        &mut self,
        dst: Option<Local>,
        kind: InvokeKind,
        callee: MethodId,
        receiver: Option<Local>,
        args: Vec<Operand>,
    ) -> CallSiteId {
        let site = CallSiteId::from_index(self.pb.call_sites.len());
        self.pb.call_sites.push(StmtAddr::new(self.id, self.cur, 0));
        let addr = self.push(Stmt::Call {
            site,
            dst,
            kind,
            callee,
            receiver,
            args,
        });
        self.pb.call_sites[site.index()] = addr;
        site
    }

    /// Convenience: virtual call with no return value.
    pub fn vcall(&mut self, callee: MethodId, receiver: Local, args: Vec<Operand>) -> CallSiteId {
        self.call(None, InvokeKind::Virtual, callee, Some(receiver), args)
    }

    /// Sets the current block's terminator to `Goto`.
    pub fn goto(&mut self, target: BlockId) -> &mut Self {
        self.blocks[self.cur.index()].terminator = Terminator::Goto(target);
        self
    }

    /// Creates a new block, jumps to it, and switches emission there.
    pub fn goto_new(&mut self) -> BlockId {
        let b = self.new_block();
        self.goto(b);
        self.switch_to(b);
        b
    }

    /// Sets the current block's terminator to a two-way branch.
    pub fn if_(
        &mut self,
        cond: impl Into<Operand>,
        then_bb: BlockId,
        else_bb: BlockId,
    ) -> &mut Self {
        self.blocks[self.cur.index()].terminator = Terminator::If {
            cond: cond.into(),
            then_bb,
            else_bb,
        };
        self
    }

    /// Sets the current block's terminator to a nondeterministic choice.
    pub fn nondet(&mut self, targets: Vec<BlockId>) -> &mut Self {
        self.blocks[self.cur.index()].terminator = Terminator::NonDet(targets);
        self
    }

    /// Sets the current block's terminator to `Return`.
    pub fn ret(&mut self, value: Option<Operand>) -> &mut Self {
        self.blocks[self.cur.index()].terminator = Terminator::Return(value);
        self
    }

    /// Finishes the method body, returning its id.
    pub fn finish(self) -> MethodId {
        let m = &mut self.pb.methods[self.id.index()];
        m.param_count = self.param_count;
        m.local_count = self.local_count.max(self.param_count);
        m.ret = self.ret;
        m.is_static = self.is_static;
        m.is_abstract = false;
        // Terminators are final once a body is finished (the reopen path
        // only inserts statements), so the flat CFG is built exactly once.
        m.cfg = Cfg::build(&self.blocks);
        m.blocks = self.blocks;
        self.id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::method::Terminator;

    #[test]
    fn build_branching_method() {
        let mut pb = ProgramBuilder::new();
        let c = pb.class("A", Origin::App).build();
        let mut mb = pb.method(c, "m");
        mb.set_param_count(1);
        let flag = mb.fresh_local();
        mb.const_(flag, ConstValue::Bool(true));
        let t = mb.new_block();
        let e = mb.new_block();
        mb.if_(flag, t, e);
        mb.switch_to(t);
        mb.ret(None);
        mb.switch_to(e);
        mb.ret(None);
        let m = mb.finish();
        let p = pb.finish();
        let method = p.method(m);
        assert_eq!(method.blocks.len(), 3);
        assert!(matches!(method.blocks[0].terminator, Terminator::If { .. }));
        assert!(p.validate().is_ok());
    }

    #[test]
    fn alloc_and_call_sites_register_addresses() {
        let mut pb = ProgramBuilder::new();
        let c = pb.class("A", Origin::App).build();
        let callee = pb.abstract_method(c, "target", 1);
        let mut mb = pb.method(c, "m");
        mb.set_param_count(1);
        let v = mb.fresh_local();
        let site = mb.new_(v, c);
        let cs = mb.call(None, InvokeKind::Virtual, callee, Some(v), vec![]);
        mb.ret(None);
        mb.finish();
        let p = pb.finish();
        assert_eq!(p.alloc_site_class(site), c);
        let addr = p.call_site_addr(cs);
        assert_eq!(addr.stmt, 1);
        assert!(matches!(p.call_site_stmt(cs), Stmt::Call { .. }));
    }

    #[test]
    fn goto_new_chains_blocks() {
        let mut pb = ProgramBuilder::new();
        let c = pb.class("A", Origin::App).build();
        let mut mb = pb.method(c, "m");
        mb.set_param_count(1);
        assert_eq!(mb.current_block(), BlockId(0));
        let b1 = mb.goto_new();
        assert_eq!(b1, BlockId(1));
        assert_eq!(mb.current_block(), b1);
        mb.ret(None);
        mb.finish();
        assert!(pb.finish().validate().is_ok());
    }

    #[test]
    fn reopen_and_insert_fixes_site_addresses() {
        let mut pb = ProgramBuilder::new();
        let c = pb.class("A", Origin::App).build();
        let callee = pb.abstract_method(c, "t", 1);
        let mut mb = pb.method(c, "m");
        mb.set_param_count(1);
        let v = mb.fresh_local();
        let a_site = mb.new_(v, c);
        let c_site = mb.call(None, InvokeKind::Virtual, callee, Some(v), vec![]);
        mb.ret(None);
        mb.finish();
        let p = pb.finish();
        let addr0 = p.alloc_site_addr(a_site);

        // Reopen, add a static field, insert a store right after the New.
        let mut pb = ProgramBuilder::from(p);
        let f = pb.add_field(c, "$syn", crate::Type::Bool, true);
        pb.insert_stmt_after(
            addr0,
            Stmt::StaticStore {
                field: f,
                value: ConstValue::Bool(true).into(),
            },
        );
        let p = pb.finish();
        assert!(p.validate().is_ok());
        // The call site shifted by one; the alloc site did not.
        assert_eq!(p.alloc_site_addr(a_site).stmt, 0);
        assert_eq!(p.call_site_addr(c_site).stmt, 2);
        assert!(matches!(p.call_site_stmt(c_site), Stmt::Call { .. }));
        assert_eq!(p.alloc_site_class(a_site), c);
    }

    #[test]
    #[should_panic(expected = "duplicate class name")]
    fn duplicate_class_names_panic() {
        let mut pb = ProgramBuilder::new();
        pb.class("A", Origin::App).build();
        pb.class("A", Origin::App).build();
    }
}
