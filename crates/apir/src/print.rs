//! Human-readable program listings for debugging and reports.

use crate::method::Terminator;
use crate::program::Program;
use crate::stmt::Stmt;
use std::fmt::Write as _;

/// Pretty-prints a [`Program`] (or parts of it) as a readable listing.
///
/// # Example
///
/// ```
/// use apir::{ProgramBuilder, Origin, ProgramPrinter};
/// let mut pb = ProgramBuilder::new();
/// let c = pb.class("A", Origin::App).build();
/// let mut mb = pb.method(c, "m");
/// mb.set_param_count(1);
/// mb.ret(None);
/// mb.finish();
/// let p = pb.finish();
/// let listing = ProgramPrinter::new(&p).print();
/// assert!(listing.contains("class A"));
/// assert!(listing.contains("method A.m"));
/// ```
#[derive(Debug)]
pub struct ProgramPrinter<'p> {
    program: &'p Program,
}

impl<'p> ProgramPrinter<'p> {
    /// Creates a printer over `program`.
    pub fn new(program: &'p Program) -> Self {
        Self { program }
    }

    /// Renders the whole program.
    pub fn print(&self) -> String {
        let mut out = String::new();
        for class in self.program.classes() {
            let kind = if class.is_interface {
                "interface"
            } else {
                "class"
            };
            let _ = write!(out, "{kind} {}", self.program.name(class.name));
            if let Some(s) = class.super_class {
                let _ = write!(out, " extends {}", self.program.class_name(s));
            }
            let _ = writeln!(out, " ({:?})", class.origin);
            for &f in &class.fields {
                let field = self.program.field(f);
                let st = if field.is_static { "static " } else { "" };
                let _ = writeln!(
                    out,
                    "  {st}field {}: {} ({f})",
                    self.program.name(field.name),
                    field.ty
                );
            }
            for &m in &class.methods {
                out.push_str(&self.print_method(m));
            }
            out.push('\n');
        }
        out
    }

    /// Renders one method body.
    pub fn print_method(&self, id: crate::MethodId) -> String {
        let mut out = String::new();
        let p = self.program;
        let m = p.method(id);
        let st = if m.is_static { "static " } else { "" };
        let _ = writeln!(
            out,
            "  {st}method {} ({id}, {} params)",
            p.method_name(id),
            m.param_count
        );
        if m.is_abstract {
            let _ = writeln!(out, "    <abstract>");
            return out;
        }
        for (bid, block) in m.iter_blocks() {
            let _ = writeln!(out, "    {bid}:");
            for stmt in &block.stmts {
                let _ = writeln!(out, "      {}", self.print_stmt(stmt));
            }
            let _ = writeln!(out, "      {}", self.print_terminator(&block.terminator));
        }
        out
    }

    fn print_stmt(&self, stmt: &Stmt) -> String {
        let p = self.program;
        match stmt {
            Stmt::Const { dst, value } => format!("{dst} = {value}"),
            Stmt::Move { dst, src } => format!("{dst} = {src}"),
            Stmt::UnOp { dst, op, src } => format!("{dst} = {op:?} {src}"),
            Stmt::BinOp { dst, op, lhs, rhs } => format!("{dst} = {lhs} {op:?} {rhs}"),
            Stmt::New { dst, class, site } => {
                format!("{dst} = new {} ({site})", p.class_name(*class))
            }
            Stmt::Load { dst, obj, field } => {
                format!("{dst} = {obj}.{}", p.field_name(*field))
            }
            Stmt::Store { obj, field, value } => {
                format!("{obj}.{} = {value}", p.field_name(*field))
            }
            Stmt::StaticLoad { dst, field } => {
                let f = p.field(*field);
                format!("{dst} = {}::{}", p.class_name(f.class), p.name(f.name))
            }
            Stmt::StaticStore { field, value } => {
                let f = p.field(*field);
                format!("{}::{} = {value}", p.class_name(f.class), p.name(f.name))
            }
            Stmt::Call {
                site,
                dst,
                kind,
                callee,
                receiver,
                args,
            } => {
                let mut s = String::new();
                if let Some(d) = dst {
                    let _ = write!(s, "{d} = ");
                }
                let _ = write!(s, "call[{kind:?}] {}", p.method_name(*callee));
                let _ = write!(s, "(");
                if let Some(r) = receiver {
                    let _ = write!(s, "this={r}");
                    if !args.is_empty() {
                        let _ = write!(s, ", ");
                    }
                }
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        let _ = write!(s, ", ");
                    }
                    let _ = write!(s, "{a}");
                }
                let _ = write!(s, ") ({site})");
                s
            }
        }
    }

    fn print_terminator(&self, t: &Terminator) -> String {
        match t {
            Terminator::Goto(b) => format!("goto {b}"),
            Terminator::If {
                cond,
                then_bb,
                else_bb,
            } => {
                format!("if {cond} then {then_bb} else {else_bb}")
            }
            Terminator::NonDet(targets) => {
                let list: Vec<String> = targets.iter().map(|b| b.to_string()).collect();
                format!("nondet [{}]", list.join(", "))
            }
            Terminator::Return(None) => "return".to_owned(),
            Terminator::Return(Some(v)) => format!("return {v}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::class::Origin;
    use crate::stmt::{ConstValue, InvokeKind, Operand};
    use crate::ty::Type;

    #[test]
    fn listing_contains_all_constructs() {
        let mut pb = ProgramBuilder::new();
        let mut cb = pb.class("A", Origin::App);
        let f = cb.field("x", Type::Int);
        let g = cb.static_field("g", Type::Bool);
        let c = cb.build();
        let callee = pb.abstract_method(c, "cb", 1);
        let mut mb = pb.method(c, "m");
        mb.set_param_count(1);
        let this = mb.param(0);
        let v = mb.fresh_local();
        mb.new_(v, c);
        mb.load(v, this, f);
        mb.store(this, f, Operand::Const(ConstValue::Int(3)));
        mb.static_load(v, g);
        mb.static_store(g, Operand::Const(ConstValue::Bool(false)));
        mb.call(
            Some(v),
            InvokeKind::Virtual,
            callee,
            Some(this),
            vec![Operand::Local(v)],
        );
        let exit = mb.new_block();
        mb.nondet(vec![exit]);
        mb.switch_to(exit);
        mb.ret(Some(Operand::Local(v)));
        mb.finish();
        let p = pb.finish();
        let listing = ProgramPrinter::new(&p).print();
        for needle in [
            "class A",
            "field x: int",
            "static field g: bool",
            "new A",
            "v1 = v0.x",
            "v0.x = 3",
            "A::g = false",
            "call[Virtual] A.cb",
            "nondet [bb1]",
            "return v1",
            "<abstract>",
        ] {
            assert!(
                listing.contains(needle),
                "missing {needle:?} in:\n{listing}"
            );
        }
    }
}
