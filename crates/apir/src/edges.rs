//! Branch-edge identification and the shared infeasible-edge set.
//!
//! The prefilter's constant/branch pruning decides, per method, which
//! outgoing edges of `If` terminators can never be taken. Those facts are
//! exchanged as plain CFG edges so that both the prefilter (dead-block
//! access pruning) and the symbolic refuter (backward path pruning) can
//! consume them without depending on each other.

use crate::ids::{BlockId, MethodId};
use crate::method::{Method, Terminator};
use crate::stmt::Operand;
use std::collections::HashSet;

/// One outgoing edge of a conditional branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchEdge {
    /// Block ending in the `If` terminator.
    pub from: BlockId,
    /// The successor this edge leads to.
    pub to: BlockId,
    /// The branch condition operand.
    pub cond: Operand,
    /// `true` for the then-edge, `false` for the else-edge.
    pub taken: bool,
}

impl Method {
    /// Every edge leaving an `If` terminator, in block order (then-edge
    /// before else-edge). Degenerate branches whose arms coincide are
    /// skipped: such an edge is taken under either condition value, so
    /// no condition fact can make it infeasible.
    pub fn branch_edges(&self) -> Vec<BranchEdge> {
        let mut out = Vec::new();
        for (from, block) in self.iter_blocks() {
            if let Terminator::If {
                cond,
                then_bb,
                else_bb,
            } = block.terminator
            {
                if then_bb == else_bb {
                    continue;
                }
                out.push(BranchEdge {
                    from,
                    to: then_bb,
                    cond,
                    taken: true,
                });
                out.push(BranchEdge {
                    from,
                    to: else_bb,
                    cond,
                    taken: false,
                });
            }
        }
        out
    }
}

/// A set of statically-infeasible CFG edges, keyed by
/// `(method, from-block, to-block)`.
///
/// Produced by the prefilter's constant propagation and consumed by the
/// backward refuter: crossing an infeasible edge (in either direction)
/// can never contribute a feasible witness path.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InfeasibleEdges {
    edges: HashSet<(MethodId, BlockId, BlockId)>,
}

impl InfeasibleEdges {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks the edge `from → to` in `method` infeasible. Returns `true`
    /// if the edge was newly inserted.
    pub fn insert(&mut self, method: MethodId, from: BlockId, to: BlockId) -> bool {
        self.edges.insert((method, from, to))
    }

    /// Whether the edge `from → to` in `method` is infeasible.
    pub fn contains(&self, method: MethodId, from: BlockId, to: BlockId) -> bool {
        self.edges.contains(&(method, from, to))
    }

    /// Number of infeasible edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether no edge is marked.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// The edges in deterministic (sorted) order.
    pub fn iter_sorted(&self) -> Vec<(MethodId, BlockId, BlockId)> {
        let mut v: Vec<_> = self.edges.iter().copied().collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::class::Origin;
    use crate::stmt::ConstValue;

    #[test]
    fn branch_edges_enumerate_if_arms_only() {
        let mut pb = ProgramBuilder::new();
        let c = pb.class("A", Origin::App).build();
        let mut mb = pb.method(c, "m");
        mb.set_param_count(1);
        let flag = mb.fresh_local();
        mb.const_(flag, ConstValue::Bool(true));
        let t = mb.new_block();
        let e = mb.new_block();
        mb.if_(flag, t, e);
        mb.switch_to(t);
        mb.ret(None);
        mb.switch_to(e);
        mb.ret(None);
        let m = mb.finish();
        let p = pb.finish();
        let edges = p.method(m).branch_edges();
        assert_eq!(edges.len(), 2);
        assert!(edges[0].taken && !edges[1].taken);
        assert_eq!(edges[0].from, edges[1].from);
        assert_ne!(edges[0].to, edges[1].to);
    }

    #[test]
    fn degenerate_branches_are_skipped() {
        let mut pb = ProgramBuilder::new();
        let c = pb.class("A", Origin::App).build();
        let mut mb = pb.method(c, "m");
        mb.set_param_count(1);
        let flag = mb.fresh_local();
        mb.const_(flag, ConstValue::Bool(true));
        let j = mb.new_block();
        mb.if_(flag, j, j);
        mb.switch_to(j);
        mb.ret(None);
        let m = mb.finish();
        let p = pb.finish();
        assert!(p.method(m).branch_edges().is_empty());
    }

    #[test]
    fn infeasible_edge_set_round_trips() {
        let mut set = InfeasibleEdges::new();
        assert!(set.is_empty());
        assert!(set.insert(MethodId(1), BlockId(0), BlockId(2)));
        assert!(!set.insert(MethodId(1), BlockId(0), BlockId(2)));
        set.insert(MethodId(0), BlockId(3), BlockId(1));
        assert_eq!(set.len(), 2);
        assert!(set.contains(MethodId(1), BlockId(0), BlockId(2)));
        assert!(!set.contains(MethodId(1), BlockId(0), BlockId(1)));
        assert_eq!(
            set.iter_sorted(),
            vec![
                (MethodId(0), BlockId(3), BlockId(1)),
                (MethodId(1), BlockId(0), BlockId(2)),
            ]
        );
    }
}
