//! Dominator computation (Cooper–Harvey–Kennedy iterative algorithm).
//!
//! SIERRA's HB rules 2–5 (§4.3) are all phrased in terms of dominance: the
//! harness CFG's dominator tree orders lifecycle and GUI actions, and
//! intra-procedural dominance among posting sites orders posted actions.

use crate::ids::{BlockId, StmtAddr};
use crate::method::Method;

/// The dominator tree of one method's CFG.
#[derive(Debug, Clone)]
pub struct Dominators {
    /// Immediate dominator of each block (`idom[entry] == entry`).
    idom: Vec<Option<BlockId>>,
    /// Whether a block is reachable from the entry.
    reachable: Vec<bool>,
}

impl Dominators {
    /// Computes dominators for `method`'s CFG.
    ///
    /// Unreachable blocks have no dominator and are reported by
    /// [`Dominators::is_reachable`].
    pub fn compute(method: &Method) -> Self {
        let n = method.blocks.len();
        if n == 0 {
            return Self {
                idom: Vec::new(),
                reachable: Vec::new(),
            };
        }

        // Reverse postorder over the CFG.
        let mut order = Vec::with_capacity(n);
        let mut state = vec![0u8; n]; // 0 unvisited, 1 on stack, 2 done
        let mut stack = vec![(BlockId(0), 0usize)];
        state[0] = 1;
        while let Some(&mut (b, ref mut i)) = stack.last_mut() {
            let succs = method.succs(b);
            if *i < succs.len() {
                let s = succs[*i];
                *i += 1;
                if state[s.index()] == 0 {
                    state[s.index()] = 1;
                    stack.push((s, 0));
                }
            } else {
                state[b.index()] = 2;
                order.push(b);
                stack.pop();
            }
        }
        order.reverse(); // now reverse postorder, entry first

        let mut rpo_num = vec![usize::MAX; n];
        for (i, &b) in order.iter().enumerate() {
            rpo_num[b.index()] = i;
        }
        let reachable: Vec<bool> = rpo_num.iter().map(|&i| i != usize::MAX).collect();

        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        idom[0] = Some(BlockId(0));

        let intersect = |idom: &[Option<BlockId>], mut a: BlockId, mut b: BlockId| -> BlockId {
            while a != b {
                while rpo_num[a.index()] > rpo_num[b.index()] {
                    a = idom[a.index()].expect("processed block has idom");
                }
                while rpo_num[b.index()] > rpo_num[a.index()] {
                    b = idom[b.index()].expect("processed block has idom");
                }
            }
            a
        };

        let mut changed = true;
        while changed {
            changed = false;
            for &b in order.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in method.preds(b) {
                    if !reachable[p.index()] || idom[p.index()].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, cur, p),
                    });
                }
                if new_idom.is_some() && idom[b.index()] != new_idom {
                    idom[b.index()] = new_idom;
                    changed = true;
                }
            }
        }

        Self { idom, reachable }
    }

    /// The immediate dominator of `b` (`b` itself for the entry block);
    /// `None` for unreachable blocks.
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        self.idom.get(b.index()).copied().flatten()
    }

    /// Whether `b` is reachable from the entry.
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.reachable.get(b.index()).copied().unwrap_or(false)
    }

    /// Whether block `a` dominates block `b` (reflexive).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if !self.is_reachable(a) || !self.is_reachable(b) {
            return false;
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            let next = match self.idom(cur) {
                Some(i) => i,
                None => return false,
            };
            if next == cur {
                return false; // reached entry without meeting `a`
            }
            cur = next;
        }
    }

    /// Whether block `a` strictly dominates block `b`.
    pub fn strictly_dominates(&self, a: BlockId, b: BlockId) -> bool {
        a != b && self.dominates(a, b)
    }

    /// Statement-level dominance within one method: `a` dominates `b` iff
    /// they are in the same block with `a` first, or `a`'s block strictly
    /// dominates `b`'s block.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the addresses belong to different methods.
    pub fn dominates_stmt(&self, a: StmtAddr, b: StmtAddr) -> bool {
        debug_assert_eq!(a.method, b.method);
        if a.block == b.block {
            a.stmt < b.stmt
        } else {
            self.strictly_dominates(a.block, b.block)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::class::Origin;
    use crate::ids::MethodId;
    use crate::stmt::ConstValue;

    /// Builds the diamond CFG: 0 -> {1,2} -> 3.
    fn diamond() -> (crate::Program, MethodId) {
        let mut pb = ProgramBuilder::new();
        let c = pb.class("A", Origin::App).build();
        let mut mb = pb.method(c, "m");
        mb.set_param_count(1);
        let cond = mb.fresh_local();
        mb.const_(cond, ConstValue::Bool(true));
        let b1 = mb.new_block();
        let b2 = mb.new_block();
        let b3 = mb.new_block();
        mb.if_(cond, b1, b2);
        mb.switch_to(b1);
        mb.goto(b3);
        mb.switch_to(b2);
        mb.goto(b3);
        mb.switch_to(b3);
        mb.ret(None);
        let m = mb.finish();
        (pb.finish(), m)
    }

    #[test]
    fn diamond_dominators() {
        let (p, m) = diamond();
        let dom = Dominators::compute(p.method(m));
        let (e, b1, b2, b3) = (BlockId(0), BlockId(1), BlockId(2), BlockId(3));
        assert_eq!(dom.idom(b1), Some(e));
        assert_eq!(dom.idom(b2), Some(e));
        assert_eq!(dom.idom(b3), Some(e));
        assert!(dom.dominates(e, b3));
        assert!(!dom.dominates(b1, b3));
        assert!(!dom.dominates(b2, b3));
        assert!(dom.strictly_dominates(e, b1));
        assert!(!dom.strictly_dominates(e, e));
        assert!(dom.dominates(e, e));
    }

    #[test]
    fn loop_dominators() {
        // 0 -> 1; 1 -> {2, 3}; 2 -> 1 (back edge); 3 exit.
        let mut pb = ProgramBuilder::new();
        let c = pb.class("A", Origin::App).build();
        let mut mb = pb.method(c, "m");
        mb.set_param_count(1);
        let cond = mb.fresh_local();
        mb.const_(cond, ConstValue::Bool(true));
        let b1 = mb.new_block();
        let b2 = mb.new_block();
        let b3 = mb.new_block();
        mb.goto(b1);
        mb.switch_to(b1);
        mb.if_(cond, b2, b3);
        mb.switch_to(b2);
        mb.goto(b1);
        mb.switch_to(b3);
        mb.ret(None);
        let m = mb.finish();
        let p = pb.finish();
        let dom = Dominators::compute(p.method(m));
        assert!(dom.dominates(b1, b2));
        assert!(dom.dominates(b1, b3));
        assert!(!dom.dominates(b2, b3));
    }

    #[test]
    fn unreachable_blocks_are_flagged() {
        let mut pb = ProgramBuilder::new();
        let c = pb.class("A", Origin::App).build();
        let mut mb = pb.method(c, "m");
        mb.set_param_count(1);
        mb.ret(None);
        let dead = mb.new_block();
        mb.switch_to(dead);
        mb.ret(None);
        let m = mb.finish();
        let p = pb.finish();
        let dom = Dominators::compute(p.method(m));
        assert!(dom.is_reachable(BlockId(0)));
        assert!(!dom.is_reachable(dead));
        assert!(!dom.dominates(BlockId(0), dead));
        assert!(dom.idom(dead).is_none());
    }

    #[test]
    fn stmt_level_dominance() {
        let (p, m) = diamond();
        let dom = Dominators::compute(p.method(m));
        let a = StmtAddr::new(m, BlockId(0), 0);
        let b = StmtAddr::new(m, BlockId(0), 1);
        let c = StmtAddr::new(m, BlockId(3), 0);
        assert!(dom.dominates_stmt(a, b));
        assert!(!dom.dominates_stmt(b, a));
        assert!(dom.dominates_stmt(a, c));
        let d1 = StmtAddr::new(m, BlockId(1), 0);
        assert!(!dom.dominates_stmt(d1, c));
    }
}
