//! Strongly-typed identifiers for every program entity.
//!
//! All ids are dense `u32` indices into the owning [`crate::Program`]'s
//! tables, wrapped in newtypes so they cannot be confused with one another
//! (C-NEWTYPE). Ids are only meaningful relative to the program that minted
//! them.

use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u32);

        impl $name {
            /// Returns the raw index.
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Builds an id from a raw index.
            ///
            /// # Panics
            ///
            /// Panics if `index` does not fit in `u32`.
            pub fn from_index(index: usize) -> Self {
                Self(u32::try_from(index).expect("id index overflow"))
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

define_id!(
    /// Identifies a class in [`crate::Program::classes`].
    ClassId,
    "C"
);
define_id!(
    /// Identifies a method in [`crate::Program::methods`].
    MethodId,
    "M"
);
define_id!(
    /// Identifies a field declaration in [`crate::Program::fields`].
    FieldId,
    "F"
);
define_id!(
    /// Identifies a basic block within one method.
    BlockId,
    "bb"
);
define_id!(
    /// A program-unique allocation site (one per `new` statement).
    AllocSiteId,
    "alloc"
);
define_id!(
    /// A program-unique call site (one per `call` statement).
    CallSiteId,
    "cs"
);
define_id!(
    /// A local variable (virtual register) within one method.
    ///
    /// Locals `0..param_count` hold the parameters; for instance methods,
    /// local 0 is the receiver (`this`).
    Local,
    "v"
);

/// The address of a statement: a method, a block, and the statement's index
/// within that block.
///
/// `stmt == block.stmts.len()` addresses the block terminator.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StmtAddr {
    /// Method containing the statement.
    pub method: MethodId,
    /// Block containing the statement.
    pub block: BlockId,
    /// Index of the statement within the block.
    pub stmt: u32,
}

impl StmtAddr {
    /// Creates a statement address.
    pub fn new(method: MethodId, block: BlockId, stmt: u32) -> Self {
        Self {
            method,
            block,
            stmt,
        }
    }
}

impl fmt::Debug for StmtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}[{}]", self.method, self.block, self.stmt)
    }
}

impl fmt::Display for StmtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip_through_indices() {
        let c = ClassId::from_index(7);
        assert_eq!(c.index(), 7);
        assert_eq!(c, ClassId(7));
    }

    #[test]
    fn ids_format_with_prefixes() {
        assert_eq!(format!("{}", MethodId(3)), "M3");
        assert_eq!(format!("{:?}", BlockId(0)), "bb0");
        assert_eq!(format!("{}", Local(12)), "v12");
    }

    #[test]
    fn distinct_id_types_do_not_compare_by_accident() {
        // This is a compile-time property; the test documents the intent.
        let a = ClassId(1);
        let b = ClassId(1);
        assert_eq!(a, b);
    }

    #[test]
    fn stmt_addr_orders_lexicographically() {
        let a = StmtAddr::new(MethodId(0), BlockId(0), 0);
        let b = StmtAddr::new(MethodId(0), BlockId(0), 1);
        let c = StmtAddr::new(MethodId(0), BlockId(1), 0);
        assert!(a < b && b < c);
        assert_eq!(format!("{}", a), "M0:bb0[0]");
    }
}
