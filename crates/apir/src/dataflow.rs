//! A generic monotone dataflow framework over `apir` method CFGs.
//!
//! The framework factors the fixpoint machinery out of the ad-hoc
//! worklist walks scattered through the pipeline (the prefilter's SCCP
//! loop, the triage classifiers): an analysis supplies a join-semilattice
//! of abstract states plus transfer functions, and [`solve`] iterates a
//! deterministic block worklist to the least fixed point.
//!
//! Three levels of generality are provided:
//!
//! - [`DataflowAnalysis`] — the full interface: per-statement transfer,
//!   per-edge transfer (which may refute an edge outright, giving
//!   SCCP-style executable-edge semantics), a widening hook for
//!   infinite-height lattices, and either CFG direction.
//! - [`GenKillAnalysis`] — the classic bit-vector special case (liveness,
//!   reaching definitions); adapt with [`GenKill`].
//! - [`solve_interprocedural`] — a summary-free interprocedural driver:
//!   callee boundary states are joined over all call sites discovered
//!   through a client-provided [`CallOracle`] (in practice the pointer
//!   analysis' call graph), iterating method solves to a global fixpoint.
//!
//! Unreached blocks are represented as `None` rather than requiring an
//! explicit bottom element, so `Option<State>` is the real lattice and
//! every analysis state is attached to a path from the boundary.

use crate::ids::{BlockId, MethodId, StmtAddr};
use crate::method::{Method, Terminator};
use crate::program::Program;
use crate::stmt::Stmt;
use std::collections::{BTreeMap, VecDeque};

/// Which way facts flow through the CFG.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Facts flow from the entry block along CFG edges.
    Forward,
    /// Facts flow from the exit blocks against CFG edges.
    Backward,
}

/// A join-semilattice of abstract states.
///
/// `join` must be commutative, associative, and idempotent; [`solve`]
/// reaches a fixpoint only when the transfer functions are monotone with
/// respect to the order induced by `join` (`a ≤ b` iff `a ∨ b = b`).
pub trait JoinSemiLattice: Clone {
    /// In-place least upper bound; returns whether `self` changed.
    fn join(&mut self, other: &Self) -> bool;

    /// The partial order induced by `join`: `self ≤ other` iff joining
    /// `self` into `other` changes nothing.
    fn le(&self, other: &Self) -> bool {
        let mut o = other.clone();
        !o.join(self)
    }
}

/// A monotone dataflow analysis: lattice + transfer functions.
pub trait DataflowAnalysis {
    /// The abstract state attached to each block boundary.
    type State: JoinSemiLattice;

    /// Flow direction (default forward).
    fn direction(&self) -> Direction {
        Direction::Forward
    }

    /// The state at the flow boundary: the entry block (forward) or every
    /// exit block (backward).
    fn boundary_state(&self, method: &Method) -> Self::State;

    /// Applies one statement to the state. Statements are visited in
    /// execution order for forward analyses and reverse order backward.
    fn transfer_stmt(&self, addr: StmtAddr, stmt: &Stmt, state: &mut Self::State);

    /// Applies a block terminator to the state (e.g. liveness of a branch
    /// condition). Runs after the statements (forward) or before them
    /// (backward). Default: no effect.
    fn transfer_terminator(&self, block: BlockId, term: &Terminator, state: &mut Self::State) {
        let _ = (block, term, state);
    }

    /// Refines the state along the CFG edge `from → to` (stated in CFG
    /// orientation for both directions). Returning `None` marks the edge
    /// statically infeasible under `state` — the SCCP executable-edge
    /// semantics; such edges transmit nothing and never become
    /// executable. Default: every edge is feasible and unrefined.
    fn transfer_edge(
        &self,
        method: &Method,
        from: BlockId,
        term: &Terminator,
        to: BlockId,
        state: &Self::State,
    ) -> Option<Self::State> {
        let _ = (method, from, term, to);
        Some(state.clone())
    }

    /// Widening hook: once a block's input has been re-joined more than
    /// [`DataflowAnalysis::widen_after`] times, the freshly joined state
    /// is passed here together with the previous one so the analysis can
    /// force ascent to a fixpoint (infinite-height lattices). Default:
    /// identity.
    fn widen(&self, block: BlockId, previous: &Self::State, joined: &mut Self::State) {
        let _ = (block, previous, joined);
    }

    /// Number of input re-joins a block tolerates before [`widen`]
    /// (Self::widen) kicks in. The default never widens, which is correct
    /// for all finite-height lattices used in this codebase.
    fn widen_after(&self) -> usize {
        usize::MAX
    }
}

/// The fixpoint of one method solve.
#[derive(Debug, Clone)]
pub struct DataflowResults<S> {
    direction: Direction,
    /// Per-block input state: at block entry (forward) or block exit
    /// (backward). `None` = the block is unreached from the boundary.
    inputs: Vec<Option<S>>,
    /// Executable CFG edges `(from, to)`, sorted. In forward mode an edge
    /// missing here while `from` is reached is statically infeasible.
    exec_edges: Vec<(BlockId, BlockId)>,
    /// Worklist iterations (block visits) the solve took.
    pub iterations: usize,
}

impl<S> DataflowResults<S> {
    /// The direction the analysis ran in.
    pub fn direction(&self) -> Direction {
        self.direction
    }

    /// The input state of `block` (entry state forward, exit state
    /// backward); `None` when the block is unreached.
    pub fn block_input(&self, block: BlockId) -> Option<&S> {
        self.inputs[block.index()].as_ref()
    }

    /// Whether `block` is reached from the flow boundary.
    pub fn reached(&self, block: BlockId) -> bool {
        self.inputs[block.index()].is_some()
    }

    /// Whether the CFG edge `(from, to)` became executable.
    pub fn edge_executable(&self, from: BlockId, to: BlockId) -> bool {
        self.exec_edges.binary_search(&(from, to)).is_ok()
    }

    /// All executable edges, sorted by `(from, to)`.
    pub fn executable_edges(&self) -> &[(BlockId, BlockId)] {
        &self.exec_edges
    }
}

/// A program point paired with its abstract state during a results walk.
#[derive(Debug, Clone, Copy)]
pub enum ProgramPoint<'a> {
    /// A statement.
    Stmt(StmtAddr, &'a Stmt),
    /// A block terminator.
    Terminator(BlockId, &'a Terminator),
}

/// Replays a forward analysis over its fixpoint, calling `visit` with the
/// state *before* each program point of every reached block, in block
/// order. This is how clients read out per-statement facts without the
/// solver having to store a state per statement.
pub fn visit_forward<A: DataflowAnalysis>(
    method: &Method,
    analysis: &A,
    results: &DataflowResults<A::State>,
    mut visit: impl FnMut(ProgramPoint<'_>, &A::State),
) {
    debug_assert_eq!(results.direction, Direction::Forward);
    for (bid, block) in method.iter_blocks() {
        let Some(input) = results.block_input(bid) else {
            continue;
        };
        let mut state = input.clone();
        for (i, stmt) in block.stmts.iter().enumerate() {
            let addr = StmtAddr::new(method.id, bid, i as u32);
            visit(ProgramPoint::Stmt(addr, stmt), &state);
            analysis.transfer_stmt(addr, stmt, &mut state);
        }
        visit(ProgramPoint::Terminator(bid, &block.terminator), &state);
    }
}

/// Solves `analysis` over `method` from the analysis' own boundary state.
pub fn solve<A: DataflowAnalysis>(method: &Method, analysis: &A) -> DataflowResults<A::State> {
    solve_with_boundary(method, analysis, analysis.boundary_state(method))
}

/// Solves `analysis` over `method` from an explicit boundary state (used
/// by the interprocedural driver, which joins boundary states over call
/// sites).
pub fn solve_with_boundary<A: DataflowAnalysis>(
    method: &Method,
    analysis: &A,
    boundary: A::State,
) -> DataflowResults<A::State> {
    let n = method.blocks.len();
    let mut inputs: Vec<Option<A::State>> = vec![None; n];
    let mut joins: Vec<usize> = vec![0; n];
    let mut exec: Vec<(BlockId, BlockId)> = Vec::new();
    let mut worklist: VecDeque<BlockId> = VecDeque::new();
    let direction = analysis.direction();

    match direction {
        Direction::Forward => {
            inputs[method.entry().index()] = Some(boundary);
            worklist.push_back(method.entry());
        }
        Direction::Backward => {
            for (bid, _block) in method.iter_blocks() {
                if method.succs(bid).is_empty() {
                    inputs[bid.index()] = Some(boundary.clone());
                    worklist.push_back(bid);
                }
            }
        }
    }

    let mut iterations = 0usize;
    while let Some(b) = worklist.pop_front() {
        iterations += 1;
        let mut state = match &inputs[b.index()] {
            Some(s) => s.clone(),
            None => continue,
        };
        let block = method.block(b);
        match direction {
            Direction::Forward => {
                for (i, stmt) in block.stmts.iter().enumerate() {
                    let addr = StmtAddr::new(method.id, b, i as u32);
                    analysis.transfer_stmt(addr, stmt, &mut state);
                }
                analysis.transfer_terminator(b, &block.terminator, &mut state);
                for &succ in method.succs(b) {
                    let Some(es) =
                        analysis.transfer_edge(method, b, &block.terminator, succ, &state)
                    else {
                        continue;
                    };
                    if propagate(
                        analysis,
                        &mut inputs,
                        &mut joins,
                        &mut exec,
                        (b, succ),
                        succ,
                        es,
                    ) {
                        worklist.push_back(succ);
                    }
                }
            }
            Direction::Backward => {
                analysis.transfer_terminator(b, &block.terminator, &mut state);
                for (i, stmt) in block.stmts.iter().enumerate().rev() {
                    let addr = StmtAddr::new(method.id, b, i as u32);
                    analysis.transfer_stmt(addr, stmt, &mut state);
                }
                for &p in method.preds(b) {
                    let term = &method.block(p).terminator;
                    let Some(es) = analysis.transfer_edge(method, p, term, b, &state) else {
                        continue;
                    };
                    if propagate(analysis, &mut inputs, &mut joins, &mut exec, (p, b), p, es) {
                        worklist.push_back(p);
                    }
                }
            }
        }
    }

    exec.sort_unstable();
    exec.dedup();
    DataflowResults {
        direction,
        inputs,
        exec_edges: exec,
        iterations,
    }
}

/// Joins `incoming` into the input of `target`, applying widening once
/// the block has been re-joined too often. Returns whether `target` needs
/// re-processing (first arrival over this edge, or a state change).
fn propagate<A: DataflowAnalysis>(
    analysis: &A,
    inputs: &mut [Option<A::State>],
    joins: &mut [usize],
    exec: &mut Vec<(BlockId, BlockId)>,
    edge: (BlockId, BlockId),
    target: BlockId,
    incoming: A::State,
) -> bool {
    let newly_exec = !exec.contains(&edge);
    if newly_exec {
        exec.push(edge);
    }
    let slot = &mut inputs[target.index()];
    let changed = match slot {
        None => {
            *slot = Some(incoming);
            true
        }
        Some(cur) => {
            joins[target.index()] += 1;
            let previous = cur.clone();
            let mut changed = cur.join(&incoming);
            if changed && joins[target.index()] > analysis.widen_after() {
                analysis.widen(target, &previous, cur);
                changed = !cur.le(&previous);
            }
            changed
        }
    };
    newly_exec || changed
}

// ---------------------------------------------------------------------------
// Gen/kill bit-vector analyses
// ---------------------------------------------------------------------------

/// A fixed-capacity bit set; the lattice of the gen/kill analyses
/// (union join).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    /// An empty set able to hold elements `0..capacity`.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            words: vec![0; capacity.div_ceil(64)],
        }
    }

    /// Inserts `i`; returns whether it was new.
    pub fn insert(&mut self, i: usize) -> bool {
        let (w, b) = (i / 64, 1u64 << (i % 64));
        let fresh = self.words[w] & b == 0;
        self.words[w] |= b;
        fresh
    }

    /// Removes `i`.
    pub fn remove(&mut self, i: usize) {
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Whether `i` is present.
    pub fn contains(&self, i: usize) -> bool {
        self.words
            .get(i / 64)
            .is_some_and(|w| w & (1u64 << (i % 64)) != 0)
    }

    /// `self -= other` (set difference).
    pub fn subtract(&mut self, other: &BitSet) {
        for (d, s) in self.words.iter_mut().zip(&other.words) {
            *d &= !s;
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterates the elements in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(wi * 64 + b)
            })
        })
    }
}

impl JoinSemiLattice for BitSet {
    fn join(&mut self, other: &Self) -> bool {
        let mut changed = false;
        for (d, s) in self.words.iter_mut().zip(&other.words) {
            let nv = *d | s;
            if nv != *d {
                *d = nv;
                changed = true;
            }
        }
        changed
    }
}

/// The classic bit-vector special case: each program point generates and
/// kills set members; the transfer is `(state − kill) ∪ gen`.
pub trait GenKillAnalysis {
    /// Flow direction.
    fn direction(&self) -> Direction;

    /// Size of the bit domain for this method (e.g. its local count).
    fn domain_size(&self, method: &Method) -> usize;

    /// Boundary state (default: empty set).
    fn boundary(&self, method: &Method) -> BitSet {
        BitSet::with_capacity(self.domain_size(method))
    }

    /// Gen/kill sets of one statement.
    fn transfer(&self, addr: StmtAddr, stmt: &Stmt, gen: &mut BitSet, kill: &mut BitSet);

    /// Gen/kill sets of a terminator (default: none).
    fn transfer_terminator(
        &self,
        block: BlockId,
        term: &Terminator,
        gen: &mut BitSet,
        kill: &mut BitSet,
    ) {
        let _ = (block, term, gen, kill);
    }
}

/// Adapter running a [`GenKillAnalysis`] on the full framework.
pub struct GenKill<A>(pub A);

impl<A: GenKillAnalysis> GenKill<A> {
    fn apply(&self, state: &mut BitSet, mut fill: impl FnMut(&A, &mut BitSet, &mut BitSet)) {
        let cap = state.words.len() * 64;
        let mut gen = BitSet::with_capacity(cap);
        let mut kill = BitSet::with_capacity(cap);
        fill(&self.0, &mut gen, &mut kill);
        state.subtract(&kill);
        state.join(&gen);
    }
}

impl<A: GenKillAnalysis> DataflowAnalysis for GenKill<A> {
    type State = BitSet;

    fn direction(&self) -> Direction {
        self.0.direction()
    }

    fn boundary_state(&self, method: &Method) -> BitSet {
        self.0.boundary(method)
    }

    fn transfer_stmt(&self, addr: StmtAddr, stmt: &Stmt, state: &mut BitSet) {
        self.apply(state, |a, gen, kill| a.transfer(addr, stmt, gen, kill));
    }

    fn transfer_terminator(&self, block: BlockId, term: &Terminator, state: &mut BitSet) {
        self.apply(state, |a, gen, kill| {
            a.transfer_terminator(block, term, gen, kill);
        });
    }
}

// ---------------------------------------------------------------------------
// Interprocedural driver
// ---------------------------------------------------------------------------

/// Client-provided call-graph view: which method bodies the call at
/// `addr` may reach. `apir` knows nothing about dispatch or contexts —
/// the oracle is implemented above it (over the pointer analysis' call
/// graph), which keeps unsound name-only resolution out of the framework.
/// Callee lists must be deterministic for a given input.
pub trait CallOracle {
    /// Possible callees with bodies; empty = opaque call.
    fn callees(&self, addr: StmtAddr, stmt: &Stmt) -> Vec<MethodId>;
}

/// A forward [`DataflowAnalysis`] that can carry its state across call
/// edges.
pub trait InterproceduralAnalysis: DataflowAnalysis {
    /// Maps the caller's state at a call site into the callee's boundary
    /// (entry) state — typically argument facts onto parameter locals.
    fn enter_call(&self, call: &Stmt, caller: &Self::State, callee: &Method) -> Self::State;
}

/// The global fixpoint of an interprocedural solve.
#[derive(Debug)]
pub struct InterResults<S> {
    /// Per-method fixpoints, for every method reached from the roots.
    pub per_method: BTreeMap<MethodId, DataflowResults<S>>,
    /// Total method (re-)solves the driver performed.
    pub solves: usize,
}

/// Runs a forward analysis across method boundaries: each root starts
/// from the analysis' boundary state; every discovered call site joins an
/// [`InterproceduralAnalysis::enter_call`] state into its callees'
/// boundaries, and methods re-solve until no boundary grows. Contexts are
/// merged per method (a context-insensitive summary of the boundary),
/// which is sound for the triage classifiers this drives: joins only lose
/// precision, never soundness, for a monotone analysis.
pub fn solve_interprocedural<A: InterproceduralAnalysis>(
    program: &Program,
    oracle: &impl CallOracle,
    roots: &[MethodId],
    analysis: &A,
) -> InterResults<A::State> {
    debug_assert!(matches!(analysis.direction(), Direction::Forward));
    let mut boundaries: BTreeMap<MethodId, A::State> = BTreeMap::new();
    let mut results: BTreeMap<MethodId, DataflowResults<A::State>> = BTreeMap::new();
    let mut worklist: VecDeque<MethodId> = VecDeque::new();
    let mut queued: Vec<MethodId> = Vec::new();

    for &root in roots {
        let method = program.method(root);
        if !method.has_body() {
            continue;
        }
        let entry = analysis.boundary_state(method);
        join_boundary::<A>(&mut boundaries, root, entry);
        if !queued.contains(&root) {
            queued.push(root);
            worklist.push_back(root);
        }
    }

    let mut solves = 0usize;
    while let Some(m) = worklist.pop_front() {
        queued.retain(|&q| q != m);
        let method = program.method(m);
        let boundary = boundaries.get(&m).expect("queued methods have a boundary");
        let fixed = solve_with_boundary(method, analysis, boundary.clone());
        solves += 1;
        // Propagate call-site states into callee boundaries.
        let mut grew: Vec<MethodId> = Vec::new();
        visit_forward(method, analysis, &fixed, |point, state| {
            let ProgramPoint::Stmt(addr, stmt) = point else {
                return;
            };
            if !matches!(stmt, Stmt::Call { .. }) {
                return;
            }
            for callee in oracle.callees(addr, stmt) {
                let callee_method = program.method(callee);
                if !callee_method.has_body() {
                    continue;
                }
                let entry = analysis.enter_call(stmt, state, callee_method);
                if join_boundary::<A>(&mut boundaries, callee, entry) {
                    grew.push(callee);
                }
            }
        });
        results.insert(m, fixed);
        for callee in grew {
            if !queued.contains(&callee) {
                queued.push(callee);
                worklist.push_back(callee);
            }
        }
    }

    InterResults {
        per_method: results,
        solves,
    }
}

/// Joins `incoming` into `boundaries[m]`; returns whether it changed (or
/// was new).
fn join_boundary<A: DataflowAnalysis>(
    boundaries: &mut BTreeMap<MethodId, A::State>,
    m: MethodId,
    incoming: A::State,
) -> bool {
    match boundaries.get_mut(&m) {
        None => {
            boundaries.insert(m, incoming);
            true
        }
        Some(cur) => cur.join(&incoming),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Local;
    use crate::method::BasicBlock;
    use crate::stmt::{BinOp, ConstValue, Operand};
    use crate::ty::Type;
    use crate::{InvokeKind, Origin, ProgramBuilder};

    /// Flat constant environment used by the framework tests: locals
    /// mapped to a known constant (absent = unknown), intersection join.
    #[derive(Debug, Clone, PartialEq, Default)]
    struct Consts(std::collections::HashMap<Local, ConstValue>);

    impl JoinSemiLattice for Consts {
        fn join(&mut self, other: &Self) -> bool {
            let before = self.0.len();
            self.0.retain(|l, v| other.0.get(l) == Some(v));
            self.0.len() != before
        }
    }

    struct ConstAnalysis;

    impl DataflowAnalysis for ConstAnalysis {
        type State = Consts;

        fn boundary_state(&self, _method: &Method) -> Consts {
            Consts::default()
        }

        fn transfer_stmt(&self, _addr: StmtAddr, stmt: &Stmt, state: &mut Consts) {
            match stmt {
                Stmt::Const { dst, value } => {
                    state.0.insert(*dst, *value);
                }
                other => {
                    if let Some(d) = other.def() {
                        state.0.remove(&d);
                    }
                }
            }
        }

        fn transfer_edge(
            &self,
            _method: &Method,
            _from: BlockId,
            term: &Terminator,
            to: BlockId,
            state: &Consts,
        ) -> Option<Consts> {
            if let Terminator::If {
                cond,
                then_bb,
                else_bb,
            } = term
            {
                if then_bb != else_bb {
                    let known = match cond {
                        Operand::Const(c) => Some(*c),
                        Operand::Local(l) => state.0.get(l).copied(),
                    };
                    if let Some(ConstValue::Bool(v)) = known {
                        let taken = if v { *then_bb } else { *else_bb };
                        if to != taken {
                            return None;
                        }
                    }
                }
            }
            Some(state.clone())
        }
    }

    fn diamond(cond: Operand) -> Method {
        // b0: x = 1; if cond -> b1 else b2; b1: goto b3; b2: x = 2, goto b3; b3: ret
        let mut b0 = BasicBlock::new();
        b0.stmts.push(Stmt::Const {
            dst: Local(0),
            value: ConstValue::Int(1),
        });
        b0.terminator = Terminator::If {
            cond,
            then_bb: BlockId(1),
            else_bb: BlockId(2),
        };
        let mut b1 = BasicBlock::new();
        b1.terminator = Terminator::Goto(BlockId(3));
        let mut b2 = BasicBlock::new();
        b2.stmts.push(Stmt::Const {
            dst: Local(0),
            value: ConstValue::Int(2),
        });
        b2.terminator = Terminator::Goto(BlockId(3));
        let b3 = BasicBlock::new();
        let blocks = vec![b0, b1, b2, b3];
        Method {
            id: MethodId(0),
            class: crate::ClassId(0),
            name: crate::Symbol(0),
            param_count: 0,
            ret: None,
            is_static: true,
            is_abstract: false,
            local_count: 1,
            cfg: crate::Cfg::build(&blocks),
            blocks,
        }
    }

    #[test]
    fn forward_join_loses_conflicting_constants() {
        let m = diamond(Operand::Local(Local(0)));
        let r = solve(&m, &ConstAnalysis);
        // Join point: x is 1 on one edge, 2 on the other → unknown.
        assert!(r.block_input(BlockId(3)).unwrap().0.is_empty());
        assert!(r.reached(BlockId(1)) && r.reached(BlockId(2)));
        assert_eq!(r.executable_edges().len(), 4);
    }

    #[test]
    fn infeasible_edge_keeps_constant_and_dead_block() {
        let m = diamond(Operand::Const(ConstValue::Bool(false)));
        let r = solve(&m, &ConstAnalysis);
        assert!(!r.reached(BlockId(1)), "then-branch is dead");
        assert!(!r.edge_executable(BlockId(0), BlockId(1)));
        assert!(r.edge_executable(BlockId(0), BlockId(2)));
        // Only the else path reaches the join: x = 2 survives.
        assert_eq!(
            r.block_input(BlockId(3)).unwrap().0.get(&Local(0)),
            Some(&ConstValue::Int(2))
        );
    }

    #[test]
    fn visit_forward_exposes_per_statement_states() {
        let m = diamond(Operand::Const(ConstValue::Bool(true)));
        let r = solve(&m, &ConstAnalysis);
        let mut terminator_states = Vec::new();
        visit_forward(&m, &ConstAnalysis, &r, |point, state| {
            if let ProgramPoint::Terminator(b, _) = point {
                terminator_states.push((b, state.0.get(&Local(0)).copied()));
            }
        });
        // Unreached b2 is skipped; every other terminator sees x = 1.
        assert_eq!(
            terminator_states,
            vec![
                (BlockId(0), Some(ConstValue::Int(1))),
                (BlockId(1), Some(ConstValue::Int(1))),
                (BlockId(3), Some(ConstValue::Int(1))),
            ]
        );
    }

    /// Liveness as the canonical backward gen/kill instance.
    struct Liveness;

    impl GenKillAnalysis for Liveness {
        fn direction(&self) -> Direction {
            Direction::Backward
        }

        fn domain_size(&self, method: &Method) -> usize {
            method.local_count as usize
        }

        fn transfer(&self, _addr: StmtAddr, stmt: &Stmt, gen: &mut BitSet, kill: &mut BitSet) {
            // Backward order: uses are generated, the def is killed; a
            // statement both using and defining a local keeps it live
            // because gen is applied after kill.
            if let Some(d) = stmt.def() {
                kill.insert(d.index());
            }
            for u in stmt.uses() {
                gen.insert(u.index());
            }
        }

        fn transfer_terminator(
            &self,
            _block: BlockId,
            term: &Terminator,
            gen: &mut BitSet,
            _kill: &mut BitSet,
        ) {
            let used = match term {
                Terminator::If { cond, .. } => cond.as_local(),
                Terminator::Return(Some(op)) => op.as_local(),
                _ => None,
            };
            if let Some(l) = used {
                gen.insert(l.index());
            }
        }
    }

    #[test]
    fn backward_liveness_over_a_branch() {
        // b0: l1 = l0 + 1; if l1 -> b1 else b2
        // b1: ret l1    b2: ret l2
        let mut b0 = BasicBlock::new();
        b0.stmts.push(Stmt::BinOp {
            dst: Local(1),
            op: BinOp::Add,
            lhs: Operand::Local(Local(0)),
            rhs: Operand::Const(ConstValue::Int(1)),
        });
        b0.terminator = Terminator::If {
            cond: Operand::Local(Local(1)),
            then_bb: BlockId(1),
            else_bb: BlockId(2),
        };
        let mut b1 = BasicBlock::new();
        b1.terminator = Terminator::Return(Some(Operand::Local(Local(1))));
        let mut b2 = BasicBlock::new();
        b2.terminator = Terminator::Return(Some(Operand::Local(Local(2))));
        let blocks = vec![b0, b1, b2];
        let m = Method {
            id: MethodId(0),
            class: crate::ClassId(0),
            name: crate::Symbol(0),
            param_count: 1,
            ret: Some(Type::Int),
            is_static: true,
            is_abstract: false,
            local_count: 3,
            cfg: crate::Cfg::build(&blocks),
            blocks,
        };
        let r = solve(&m, &GenKill(Liveness));
        // Exit state of b0 = live-in of its successors: l1 (b1) ∪ l2 (b2).
        let live_out_b0: Vec<usize> = r.block_input(BlockId(0)).unwrap().iter().collect();
        assert_eq!(live_out_b0, vec![1, 2]);
    }

    /// A saturating counter lattice with genuinely infinite ascent unless
    /// widened: the widening hook jumps straight to ⊤.
    #[derive(Debug, Clone, PartialEq, Eq)]
    enum Counter {
        Exactly(i64),
        Top,
    }

    impl JoinSemiLattice for Counter {
        fn join(&mut self, other: &Self) -> bool {
            match (&*self, other) {
                (Counter::Top, _) => false,
                (Counter::Exactly(a), Counter::Exactly(b)) if a == b => false,
                _ => {
                    *self = Counter::Top;
                    true
                }
            }
        }
    }

    struct CountLoop;

    impl DataflowAnalysis for CountLoop {
        type State = Counter;

        fn boundary_state(&self, _method: &Method) -> Counter {
            Counter::Exactly(0)
        }

        fn transfer_stmt(&self, _addr: StmtAddr, _stmt: &Stmt, state: &mut Counter) {
            if let Counter::Exactly(v) = state {
                *v += 1;
            }
        }

        fn widen(&self, _block: BlockId, _previous: &Counter, joined: &mut Counter) {
            *joined = Counter::Top;
        }

        fn widen_after(&self) -> usize {
            0
        }
    }

    #[test]
    fn widening_forces_a_fixpoint() {
        // b0: (one stmt); NonDet -> {b0, b1}; b1: ret. Without the Top
        // jump the Exactly counter would never stabilize — joining 0 and
        // 1 already goes to Top under this lattice, but widen_after = 0
        // exercises the hook path.
        let mut b0 = BasicBlock::new();
        b0.stmts.push(Stmt::Const {
            dst: Local(0),
            value: ConstValue::Int(0),
        });
        b0.terminator = Terminator::NonDet(vec![BlockId(0), BlockId(1)]);
        let b1 = BasicBlock::new();
        let blocks = vec![b0, b1];
        let m = Method {
            id: MethodId(0),
            class: crate::ClassId(0),
            name: crate::Symbol(0),
            param_count: 0,
            ret: None,
            is_static: true,
            is_abstract: false,
            local_count: 1,
            cfg: crate::Cfg::build(&blocks),
            blocks,
        };
        let r = solve(&m, &CountLoop);
        assert_eq!(r.block_input(BlockId(0)), Some(&Counter::Top));
        assert_eq!(r.block_input(BlockId(1)), Some(&Counter::Top));
        assert!(r.iterations < 20, "widening must terminate the ascent");
    }

    /// Interprocedural constant flow: `main` passes a constant to
    /// `callee`, whose parameter should pick it up through `enter_call`.
    struct InterConsts;

    impl DataflowAnalysis for InterConsts {
        type State = Consts;

        fn boundary_state(&self, _method: &Method) -> Consts {
            Consts::default()
        }

        fn transfer_stmt(&self, addr: StmtAddr, stmt: &Stmt, state: &mut Consts) {
            ConstAnalysis.transfer_stmt(addr, stmt, state);
        }
    }

    impl InterproceduralAnalysis for InterConsts {
        fn enter_call(&self, call: &Stmt, caller: &Consts, callee: &Method) -> Consts {
            let mut entry = Consts::default();
            if let Stmt::Call { args, .. } = call {
                // Static call: parameter i receives argument i.
                for (i, arg) in args.iter().enumerate() {
                    if i >= callee.param_count as usize {
                        break;
                    }
                    let known = match arg {
                        Operand::Const(c) => Some(*c),
                        Operand::Local(l) => caller.0.get(l).copied(),
                    };
                    if let Some(c) = known {
                        entry.0.insert(Local(i as u32), c);
                    }
                }
            }
            entry
        }
    }

    struct StaticCalls;

    impl CallOracle for StaticCalls {
        fn callees(&self, _addr: StmtAddr, stmt: &Stmt) -> Vec<MethodId> {
            match stmt {
                Stmt::Call { callee, .. } => vec![*callee],
                _ => Vec::new(),
            }
        }
    }

    #[test]
    fn interprocedural_boundary_joins_over_call_sites() {
        let mut pb = ProgramBuilder::new();
        let class = pb.class("T", Origin::App).build();

        let mut mb = pb.method(class, "callee");
        mb.set_param_count(1);
        let p = mb.param(0);
        let echo = mb.fresh_local();
        mb.move_(echo, p);
        mb.ret(None);
        let callee = mb.finish();

        let mut mb = pb.method(class, "main");
        mb.set_param_count(0);
        let x = mb.fresh_local();
        mb.const_(x, ConstValue::Int(7));
        mb.call(
            None,
            InvokeKind::Static,
            callee,
            None,
            vec![Operand::Local(x)],
        );
        mb.call(
            None,
            InvokeKind::Static,
            callee,
            None,
            vec![Operand::Const(ConstValue::Int(7))],
        );
        mb.ret(None);
        let main = mb.finish();
        let program = pb.finish();

        let r = solve_interprocedural(&program, &StaticCalls, &[main], &InterConsts);
        // Both call sites pass 7, so the joined boundary keeps it.
        let callee_entry = r.per_method[&callee]
            .block_input(BlockId(0))
            .expect("callee reached");
        assert_eq!(callee_entry.0.get(&Local(0)), Some(&ConstValue::Int(7)));
        assert!(r.solves >= 2);

        // A third site with a different constant would demote it to ⊤ —
        // simulate by re-entering with 8.
        let callee_m = program.method(callee);
        let call = Stmt::Call {
            site: crate::CallSiteId(999),
            dst: None,
            kind: InvokeKind::Static,
            callee,
            receiver: None,
            args: vec![Operand::Const(ConstValue::Int(8))],
        };
        let mut joined = callee_entry.clone();
        let other = InterConsts.enter_call(&call, &Consts::default(), callee_m);
        assert!(joined.join(&other));
        assert!(joined.0.is_empty());
    }

    /// The resolve-aware oracle shape the triage stage uses: a call
    /// site whose callee has no body yields an empty list (opaque —
    /// unresolved reflection, a havoc-smashed site, or a framework
    /// stub); everything else resolves statically.
    struct BodyAwareCalls;

    impl CallOracle for BodyAwareCalls {
        fn callees(&self, _addr: StmtAddr, stmt: &Stmt) -> Vec<MethodId> {
            match stmt {
                Stmt::Call { callee, .. } => vec![*callee],
                _ => Vec::new(),
            }
        }
    }

    #[test]
    fn opaque_call_drops_result_facts_but_keeps_the_rest() {
        // main: x = 7; y = opaque(x); sink(x, y)
        //
        // `opaque` has no body — the case every opaque-policy leaves at
        // a call site it cannot (or chooses not to) resolve. The driver
        // must not solve it, the caller must keep unrelated facts (x is
        // still 7 after the call), and the facts about the call's own
        // result must drop to ⊤ (havoc transfer: y is unknown in sink).
        let mut pb = ProgramBuilder::new();
        let class = pb.class("T", Origin::App).build();
        let opaque = pb.abstract_method(class, "opaque", 1);

        let mut mb = pb.method(class, "sink");
        mb.set_param_count(2);
        mb.ret(None);
        let sink = mb.finish();

        let mut mb = pb.method(class, "main");
        mb.set_param_count(0);
        let x = mb.fresh_local();
        let y = mb.fresh_local();
        mb.const_(x, ConstValue::Int(7));
        mb.call(
            Some(y),
            InvokeKind::Static,
            opaque,
            None,
            vec![Operand::Local(x)],
        );
        mb.call(
            None,
            InvokeKind::Static,
            sink,
            None,
            vec![Operand::Local(x), Operand::Local(y)],
        );
        mb.ret(None);
        let main = mb.finish();
        let program = pb.finish();

        let r = solve_interprocedural(&program, &BodyAwareCalls, &[main], &InterConsts);
        assert!(
            !r.per_method.contains_key(&opaque),
            "a bodyless callee is never solved"
        );
        assert_eq!(r.per_method.len(), 2, "main and sink only");
        let sink_entry = r.per_method[&sink]
            .block_input(BlockId(0))
            .expect("sink reached past the opaque site");
        assert_eq!(
            sink_entry.0.get(&Local(0)),
            Some(&ConstValue::Int(7)),
            "facts not flowing through the opaque callee survive it"
        );
        assert_eq!(
            sink_entry.0.get(&Local(1)),
            None,
            "the opaque call's result enters the callee as ⊤"
        );
    }

    #[test]
    fn empty_root_and_all_opaque_calls_yield_no_results() {
        // A root whose every call is opaque produces exactly one solve:
        // the driver must terminate without inventing callee boundaries.
        struct NoCalls;
        impl CallOracle for NoCalls {
            fn callees(&self, _addr: StmtAddr, _stmt: &Stmt) -> Vec<MethodId> {
                Vec::new()
            }
        }
        let mut pb = ProgramBuilder::new();
        let class = pb.class("T", Origin::App).build();
        let opaque = pb.abstract_method(class, "opaque", 0);
        let mut mb = pb.method(class, "main");
        mb.set_param_count(0);
        mb.call(None, InvokeKind::Static, opaque, None, vec![]);
        mb.ret(None);
        let main = mb.finish();
        let program = pb.finish();

        let r = solve_interprocedural(&program, &NoCalls, &[main], &InterConsts);
        assert_eq!(r.solves, 1);
        assert_eq!(r.per_method.len(), 1);
        assert!(r.per_method.contains_key(&main));
    }

    #[test]
    fn bitset_operations() {
        let mut s = BitSet::with_capacity(130);
        assert!(s.is_empty());
        assert!(s.insert(0));
        assert!(s.insert(129));
        assert!(!s.insert(129));
        assert!(s.contains(129) && !s.contains(64));
        assert_eq!(s.len(), 2);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 129]);
        s.remove(0);
        assert!(!s.contains(0));
        let mut t = BitSet::with_capacity(130);
        t.insert(5);
        assert!(t.join(&s));
        assert!(!t.join(&s), "join is idempotent");
        assert_eq!(t.iter().collect::<Vec<_>>(), vec![5, 129]);
        let mut u = t.clone();
        u.subtract(&s);
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![5]);
        assert!(!s.le(&t) || t.le(&t));
        assert!(t.le(&t), "le is reflexive");
    }

    mod lattice_laws {
        use super::*;
        use sierra_prng::SplitMix64;

        fn random_bitset(rng: &mut SplitMix64, cap: usize) -> BitSet {
            let mut s = BitSet::with_capacity(cap);
            for _ in 0..rng.usize(cap) {
                s.insert(rng.usize(cap));
            }
            s
        }

        /// Join must be commutative, associative, idempotent, and induce
        /// a consistent partial order — on 256 random set triples.
        #[test]
        fn bitset_join_laws_hold() {
            let mut rng = SplitMix64::new(0xDA7AF10);
            for _ in 0..256 {
                let cap = 1 + rng.usize(100);
                let a = random_bitset(&mut rng, cap);
                let b = random_bitset(&mut rng, cap);
                let c = random_bitset(&mut rng, cap);

                let mut ab = a.clone();
                ab.join(&b);
                let mut ba = b.clone();
                ba.join(&a);
                assert_eq!(ab, ba, "commutative");

                let mut ab_c = ab.clone();
                ab_c.join(&c);
                let mut bc = b.clone();
                bc.join(&c);
                let mut a_bc = a.clone();
                a_bc.join(&bc);
                assert_eq!(ab_c, a_bc, "associative");

                let mut aa = a.clone();
                assert!(!aa.join(&a), "idempotent");

                assert!(a.le(&ab) && b.le(&ab), "join is an upper bound");
                assert!(a.le(&a), "reflexive");
            }
        }

        /// Gen/kill transfers are monotone: s1 ≤ s2 ⇒ f(s1) ≤ f(s2),
        /// on randomized states and random statement shapes.
        #[test]
        fn gen_kill_transfer_is_monotone() {
            let mut rng = SplitMix64::new(0x90709);
            let lv = GenKill(Liveness);
            for _ in 0..256 {
                let cap = 8;
                let s1 = random_bitset(&mut rng, cap);
                let mut s2 = s1.clone();
                s2.join(&random_bitset(&mut rng, cap));
                let stmt = match rng.usize(4) {
                    0 => Stmt::Const {
                        dst: Local(rng.usize(cap) as u32),
                        value: ConstValue::Int(rng.range_i64(0, 9)),
                    },
                    1 => Stmt::Move {
                        dst: Local(rng.usize(cap) as u32),
                        src: Local(rng.usize(cap) as u32),
                    },
                    2 => Stmt::BinOp {
                        dst: Local(rng.usize(cap) as u32),
                        op: BinOp::Add,
                        lhs: Operand::Local(Local(rng.usize(cap) as u32)),
                        rhs: Operand::Local(Local(rng.usize(cap) as u32)),
                    },
                    _ => Stmt::Load {
                        dst: Local(rng.usize(cap) as u32),
                        obj: Local(rng.usize(cap) as u32),
                        field: crate::FieldId(0),
                    },
                };
                let addr = StmtAddr::new(MethodId(0), BlockId(0), 0);
                let mut t1 = s1.clone();
                let mut t2 = s2.clone();
                lv.transfer_stmt(addr, &stmt, &mut t1);
                lv.transfer_stmt(addr, &stmt, &mut t2);
                assert!(s1.le(&s2), "precondition");
                assert!(t1.le(&t2), "monotone transfer: {stmt:?}");
            }
        }
    }
}
