//! Lightweight intra-method reaching-definition queries.
//!
//! Several analyses need to know whether an operand at a program point is a
//! compile-time constant (view ids passed to `findViewById`, message codes
//! passed to `sendEmptyMessage`, `Message.what` stores). This module walks
//! definitions backwards within a method — through the current block and
//! unique-predecessor chains — which covers the straight-line idioms real
//! registration/posting code uses.

use crate::ids::{Local, StmtAddr};
use crate::method::Method;
use crate::stmt::{ConstValue, Operand, Stmt};

/// Maximum number of statements inspected per query (guards degenerate CFGs).
const SCAN_BUDGET: usize = 4_096;

/// Resolves `operand` at `addr` to a constant, if a unique reaching
/// definition chain proves one.
///
/// Returns `None` when the operand is not provably constant (joins with
/// multiple predecessors, redefinitions through calls, etc.).
pub fn resolve_const_operand(
    method: &Method,
    addr: StmtAddr,
    operand: Operand,
) -> Option<ConstValue> {
    match operand {
        Operand::Const(c) => Some(c),
        Operand::Local(l) => match find_def(method, addr, l)? {
            (_, Stmt::Const { value, .. }) => Some(*value),
            (def_addr, Stmt::Move { src, .. }) => {
                resolve_const_operand(method, def_addr, Operand::Local(*src))
            }
            _ => None,
        },
    }
}

/// Finds the most recent definition of `local` strictly before `addr`,
/// scanning the containing block backwards and then following *unique*
/// predecessors.
///
/// Returns the defining statement and its address, or `None` if the search
/// reaches a join point, the method entry, or the scan budget first.
pub fn find_def(method: &Method, addr: StmtAddr, local: Local) -> Option<(StmtAddr, &Stmt)> {
    let mut budget = SCAN_BUDGET;
    let mut block = addr.block;
    let mut upto = addr.stmt as usize; // exclusive
    loop {
        let stmts = &method.block(block).stmts;
        for i in (0..upto.min(stmts.len())).rev() {
            budget = budget.checked_sub(1)?;
            if stmts[i].def() == Some(local) {
                return Some((StmtAddr::new(method.id, block, i as u32), &stmts[i]));
            }
        }
        let p = method.preds(block);
        if p.len() != 1 {
            return None;
        }
        block = p[0];
        upto = method.block(block).stmts.len();
    }
}

/// Resolves the allocation-like origin of `local` at `addr`: follows moves
/// back to a `New`, `Load`, `StaticLoad`, or `Call` definition.
pub fn find_value_origin(
    method: &Method,
    addr: StmtAddr,
    local: Local,
) -> Option<(StmtAddr, &Stmt)> {
    let (def_addr, stmt) = find_def(method, addr, local)?;
    match stmt {
        Stmt::Move { src, .. } => find_value_origin(method, def_addr, *src),
        _ => Some((def_addr, stmt)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::class::Origin;
    use crate::ids::{BlockId, MethodId};

    fn build(f: impl FnOnce(&mut crate::MethodBuilder<'_>)) -> (crate::Program, MethodId) {
        let mut pb = ProgramBuilder::new();
        let c = pb.class("A", Origin::App).build();
        let mut mb = pb.method(c, "m");
        mb.set_param_count(1);
        f(&mut mb);
        let m = mb.finish();
        (pb.finish(), m)
    }

    #[test]
    fn const_through_moves() {
        let (p, m) = build(|mb| {
            let a = mb.fresh_local();
            let b = mb.fresh_local();
            mb.const_(a, ConstValue::Int(42));
            mb.move_(b, a);
            mb.ret(None);
        });
        let method = p.method(m);
        let at = StmtAddr::new(m, BlockId(0), 2);
        assert_eq!(
            resolve_const_operand(method, at, Operand::Local(Local(2))),
            Some(ConstValue::Int(42))
        );
        assert_eq!(
            resolve_const_operand(method, at, Operand::Const(ConstValue::Bool(true))),
            Some(ConstValue::Bool(true))
        );
    }

    #[test]
    fn redefinition_shadows() {
        let (p, m) = build(|mb| {
            let a = mb.fresh_local();
            mb.const_(a, ConstValue::Int(1));
            mb.const_(a, ConstValue::Int(2));
            mb.ret(None);
        });
        let method = p.method(m);
        let at = StmtAddr::new(m, BlockId(0), 2);
        assert_eq!(
            resolve_const_operand(method, at, Operand::Local(Local(1))),
            Some(ConstValue::Int(2))
        );
    }

    #[test]
    fn join_points_give_up() {
        let (p, m) = build(|mb| {
            let a = mb.fresh_local();
            let flag = mb.fresh_local();
            mb.const_(flag, ConstValue::Bool(true));
            let t = mb.new_block();
            let e = mb.new_block();
            let j = mb.new_block();
            mb.if_(flag, t, e);
            mb.switch_to(t);
            mb.const_(a, ConstValue::Int(1));
            mb.goto(j);
            mb.switch_to(e);
            mb.const_(a, ConstValue::Int(2));
            mb.goto(j);
            mb.switch_to(j);
            mb.ret(None);
        });
        let method = p.method(m);
        let at = StmtAddr::new(m, BlockId(3), 0);
        assert_eq!(
            resolve_const_operand(method, at, Operand::Local(Local(1))),
            None
        );
    }

    #[test]
    fn unique_predecessor_chain_is_followed() {
        let (p, m) = build(|mb| {
            let a = mb.fresh_local();
            mb.const_(a, ConstValue::Int(7));
            mb.goto_new();
            mb.ret(None);
        });
        let method = p.method(m);
        let at = StmtAddr::new(m, BlockId(1), 0);
        assert_eq!(
            resolve_const_operand(method, at, Operand::Local(Local(1))),
            Some(ConstValue::Int(7))
        );
    }

    #[test]
    fn value_origin_finds_allocation() {
        let mut pb = ProgramBuilder::new();
        let c = pb.class("A", Origin::App).build();
        let mut mb = pb.method(c, "m");
        mb.set_param_count(1);
        let a = mb.fresh_local();
        let b = mb.fresh_local();
        let site = mb.new_(a, c);
        mb.move_(b, a);
        mb.ret(None);
        let m = mb.finish();
        let p = pb.finish();
        let method = p.method(m);
        let at = StmtAddr::new(m, BlockId(0), 2);
        let (def_addr, stmt) = find_value_origin(method, at, b).unwrap();
        assert!(matches!(stmt, Stmt::New { site: s, .. } if *s == site));
        assert_eq!(def_addr.stmt, 0);
    }
}
