//! Randomized property tests of the IR substrate.
//!
//! Each test draws many random cases from a fixed-seed [`SplitMix64`]
//! stream, so the suite is a deterministic property check: the same CFGs
//! and strings are exercised on every run and every machine.

use crate::builder::ProgramBuilder;
use crate::class::Origin;
use crate::dom::Dominators;
use crate::ids::{BlockId, MethodId};
use crate::interner::Interner;
use crate::method::Terminator;
use crate::program::Program;
use sierra_prng::SplitMix64;

/// Builds a method whose CFG has `n` blocks with the given successor lists.
fn cfg_program(succs: &[Vec<usize>]) -> (Program, MethodId) {
    let mut pb = ProgramBuilder::new();
    let c = pb.class("A", Origin::App).build();
    let mut mb = pb.method(c, "m");
    mb.set_param_count(1);
    for _ in 1..succs.len() {
        mb.new_block();
    }
    for (i, ss) in succs.iter().enumerate() {
        mb.switch_to(BlockId::from_index(i));
        match ss.len() {
            0 => {
                mb.ret(None);
            }
            _ => {
                mb.nondet(ss.iter().map(|&s| BlockId::from_index(s)).collect());
            }
        }
    }
    let m = mb.finish();
    (pb.finish(), m)
}

/// Reference dominance: `a` dominates `b` iff every entry→b path passes
/// through `a` — equivalently, removing `a` makes `b` unreachable.
fn brute_force_dominates(succs: &[Vec<usize>], a: usize, b: usize) -> bool {
    if a == b {
        return reachable(succs, None).contains(&b);
    }
    let all = reachable(succs, None);
    if !all.contains(&a) || !all.contains(&b) {
        return false;
    }
    !reachable(succs, Some(a)).contains(&b)
}

fn reachable(succs: &[Vec<usize>], removed: Option<usize>) -> std::collections::HashSet<usize> {
    let mut seen = std::collections::HashSet::new();
    if removed == Some(0) {
        return seen;
    }
    let mut stack = vec![0usize];
    while let Some(n) = stack.pop() {
        if Some(n) == removed || !seen.insert(n) {
            continue;
        }
        for &s in &succs[n] {
            if Some(s) != removed {
                stack.push(s);
            }
        }
    }
    seen
}

/// A random CFG: 2..=8 blocks, each with 0..=2 successors.
fn random_cfg(rng: &mut SplitMix64) -> Vec<Vec<usize>> {
    let n = 2 + rng.usize(7);
    (0..n)
        .map(|_| (0..rng.usize(3)).map(|_| rng.usize(n)).collect())
        .collect()
}

/// The iterative dominator algorithm agrees with the node-removal
/// definition of dominance on arbitrary CFGs.
#[test]
fn dominators_match_brute_force() {
    let mut rng = SplitMix64::new(0xD0111);
    for _ in 0..128 {
        let succs = random_cfg(&mut rng);
        let (p, m) = cfg_program(&succs);
        assert!(p.validate().is_ok());
        let dom = Dominators::compute(p.method(m));
        for a in 0..succs.len() {
            for b in 0..succs.len() {
                let expect = brute_force_dominates(&succs, a, b);
                let got = dom.dominates(BlockId::from_index(a), BlockId::from_index(b));
                assert_eq!(got, expect, "dom({a},{b}) in {succs:?}");
            }
        }
    }
}

/// Reachability flags agree with the brute-force traversal.
#[test]
fn reachability_matches_brute_force() {
    let mut rng = SplitMix64::new(0x4EAC4);
    for _ in 0..128 {
        let succs = random_cfg(&mut rng);
        let (p, m) = cfg_program(&succs);
        let dom = Dominators::compute(p.method(m));
        let all = reachable(&succs, None);
        for b in 0..succs.len() {
            assert_eq!(dom.is_reachable(BlockId::from_index(b)), all.contains(&b));
        }
    }
}

/// Interning is a bijection on the set of interned strings.
#[test]
fn interner_round_trips() {
    const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_.$";
    let mut rng = SplitMix64::new(0x57217);
    for _ in 0..128 {
        let count = 1 + rng.usize(31);
        let strings: Vec<String> = (0..count)
            .map(|_| {
                let len = rng.usize(25);
                (0..len).map(|_| *rng.pick(ALPHABET) as char).collect()
            })
            .collect();
        let mut i = Interner::new();
        let syms: Vec<_> = strings.iter().map(|s| i.intern(s)).collect();
        for (s, &sym) in strings.iter().zip(&syms) {
            assert_eq!(i.resolve(sym), s.as_str());
            assert_eq!(i.intern(s), sym, "re-interning is stable");
        }
        let distinct: std::collections::HashSet<_> = strings.iter().collect();
        assert_eq!(i.len(), distinct.len());
    }
}

/// Predecessor maps are the exact inverse of terminator successors.
#[test]
fn predecessors_invert_successors() {
    let mut rng = SplitMix64::new(0x94ED5);
    for _ in 0..128 {
        let succs = random_cfg(&mut rng);
        let (p, m) = cfg_program(&succs);
        let method = p.method(m);
        let preds = method.predecessors();
        for (i, ss) in succs.iter().enumerate() {
            for &s in ss {
                assert!(preds[s].contains(&BlockId::from_index(i)));
            }
        }
        // And nothing extra: every recorded predecessor really has the edge.
        for (b, ps) in preds.iter().enumerate() {
            for p_ in ps {
                let term = &method.block(*p_).terminator;
                assert!(
                    matches!(term, Terminator::NonDet(ts) if ts.contains(&BlockId::from_index(b)))
                        || matches!(term, Terminator::Goto(t) if t.index() == b)
                );
            }
        }
    }
}
