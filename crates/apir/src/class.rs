//! Classes, fields, and code origin.

use crate::ids::{ClassId, FieldId, MethodId};
use crate::interner::Symbol;
use crate::ty::Type;

/// Where a class's code comes from.
///
/// SIERRA's race prioritization (§3.1) ranks races in application code above
/// races in framework code reached from app code, above races inside
/// libraries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Origin {
    /// Third-party library bundled with the app.
    Library,
    /// The Android Framework model.
    Framework,
    /// The application's own code.
    App,
}

/// A field declaration.
#[derive(Debug, Clone)]
pub struct Field {
    /// This field's id.
    pub id: FieldId,
    /// Declaring class.
    pub class: ClassId,
    /// Simple name.
    pub name: Symbol,
    /// Declared type.
    pub ty: Type,
    /// Whether the field is static.
    pub is_static: bool,
}

/// A class (or interface) declaration.
#[derive(Debug, Clone)]
pub struct Class {
    /// This class's id.
    pub id: ClassId,
    /// Fully-qualified name, e.g. `com.example.NewsActivity`.
    pub name: Symbol,
    /// Superclass, `None` only for the root class.
    pub super_class: Option<ClassId>,
    /// Implemented interfaces.
    pub interfaces: Vec<ClassId>,
    /// Declared methods.
    pub methods: Vec<MethodId>,
    /// Declared instance and static fields.
    pub fields: Vec<FieldId>,
    /// Whether this is an interface.
    pub is_interface: bool,
    /// Code origin for prioritization.
    pub origin: Origin,
}

impl Class {
    /// Whether instances of this class can be created (`new`).
    pub fn is_instantiable(&self) -> bool {
        !self.is_interface
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn origin_orders_by_priority() {
        assert!(Origin::App > Origin::Framework);
        assert!(Origin::Framework > Origin::Library);
    }

    #[test]
    fn interfaces_are_not_instantiable() {
        let c = Class {
            id: ClassId(0),
            name: Symbol(0),
            super_class: None,
            interfaces: vec![],
            methods: vec![],
            fields: vec![],
            is_interface: true,
            origin: Origin::App,
        };
        assert!(!c.is_instantiable());
    }
}
