//! The whole-program container and class-hierarchy queries.

use crate::class::{Class, Field, Origin};
use crate::ids::{AllocSiteId, CallSiteId, ClassId, FieldId, MethodId, StmtAddr};
use crate::interner::{Interner, Symbol};
use crate::method::Method;
use crate::stmt::Stmt;
use std::collections::HashMap;

/// A complete program: classes, methods, fields, and site tables.
///
/// Built with [`crate::ProgramBuilder`]; immutable afterwards (analyses
/// never mutate the program).
#[derive(Debug, Clone)]
pub struct Program {
    pub(crate) interner: Interner,
    pub(crate) classes: Vec<Class>,
    pub(crate) methods: Vec<Method>,
    pub(crate) fields: Vec<Field>,
    /// Statement address of every allocation site.
    pub(crate) alloc_sites: Vec<StmtAddr>,
    /// Statement address of every call site.
    pub(crate) call_sites: Vec<StmtAddr>,
    pub(crate) class_by_name: HashMap<Symbol, ClassId>,
}

impl Program {
    /// All classes.
    pub fn classes(&self) -> &[Class] {
        &self.classes
    }

    /// All methods.
    pub fn methods(&self) -> &[Method] {
        &self.methods
    }

    /// All fields.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// The class with the given id.
    pub fn class(&self, id: ClassId) -> &Class {
        &self.classes[id.index()]
    }

    /// The method with the given id.
    pub fn method(&self, id: MethodId) -> &Method {
        &self.methods[id.index()]
    }

    /// The field with the given id.
    pub fn field(&self, id: FieldId) -> &Field {
        &self.fields[id.index()]
    }

    /// Resolves an interned symbol to text.
    pub fn name(&self, sym: Symbol) -> &str {
        self.interner.resolve(sym)
    }

    /// The fully-qualified name of a class.
    pub fn class_name(&self, id: ClassId) -> &str {
        self.name(self.class(id).name)
    }

    /// `Class.method`-style display name of a method.
    pub fn method_name(&self, id: MethodId) -> String {
        let m = self.method(id);
        format!("{}.{}", self.class_name(m.class), self.name(m.name))
    }

    /// The simple name of a field.
    pub fn field_name(&self, id: FieldId) -> &str {
        self.name(self.field(id).name)
    }

    /// Finds a class by fully-qualified name.
    pub fn class_by_name(&self, name: &str) -> Option<ClassId> {
        let sym = self.interner.get(name)?;
        self.class_by_name.get(&sym).copied()
    }

    /// Finds a method declared *directly* on `class` by simple name.
    pub fn declared_method(&self, class: ClassId, name: &str) -> Option<MethodId> {
        let sym = self.interner.get(name)?;
        self.class(class)
            .methods
            .iter()
            .copied()
            .find(|&m| self.method(m).name == sym)
    }

    /// Finds a field declared directly on `class` by simple name.
    pub fn declared_field(&self, class: ClassId, name: &str) -> Option<FieldId> {
        let sym = self.interner.get(name)?;
        self.class(class)
            .fields
            .iter()
            .copied()
            .find(|&f| self.field(f).name == sym)
    }

    /// Whether `sub` equals `sup` or transitively extends/implements it.
    pub fn is_subtype(&self, sub: ClassId, sup: ClassId) -> bool {
        if sub == sup {
            return true;
        }
        let c = self.class(sub);
        if let Some(s) = c.super_class {
            if self.is_subtype(s, sup) {
                return true;
            }
        }
        c.interfaces.iter().any(|&i| self.is_subtype(i, sup))
    }

    /// Virtual dispatch: resolves the implementation of `decl`'s name when
    /// the receiver's dynamic class is `recv_class`, walking up the
    /// superclass chain from `recv_class`.
    ///
    /// Returns `None` if no class in the chain declares a method with that
    /// name (e.g. an abstract method with no override on this path).
    pub fn dispatch(&self, recv_class: ClassId, decl: MethodId) -> Option<MethodId> {
        let name = self.method(decl).name;
        let mut cur = Some(recv_class);
        while let Some(c) = cur {
            let class = self.class(c);
            if let Some(&m) = class
                .methods
                .iter()
                .find(|&&m| self.method(m).name == name && self.method(m).has_body())
            {
                return Some(m);
            }
            cur = class.super_class;
        }
        // Fall back to any declaration (possibly abstract) so callers can
        // at least see the signature.
        let mut cur = Some(recv_class);
        while let Some(c) = cur {
            let class = self.class(c);
            if let Some(&m) = class.methods.iter().find(|&&m| self.method(m).name == name) {
                return Some(m);
            }
            cur = class.super_class;
        }
        None
    }

    /// All concrete (instantiable) classes that are subtypes of `class`.
    pub fn concrete_subtypes(&self, class: ClassId) -> Vec<ClassId> {
        self.classes
            .iter()
            .filter(|c| c.is_instantiable() && self.is_subtype(c.id, class))
            .map(|c| c.id)
            .collect()
    }

    /// The statement address of an allocation site.
    pub fn alloc_site_addr(&self, site: AllocSiteId) -> StmtAddr {
        self.alloc_sites[site.index()]
    }

    /// The statement address of a call site.
    pub fn call_site_addr(&self, site: CallSiteId) -> StmtAddr {
        self.call_sites[site.index()]
    }

    /// The class allocated at `site`.
    pub fn alloc_site_class(&self, site: AllocSiteId) -> ClassId {
        let addr = self.alloc_site_addr(site);
        match self.method(addr.method).stmt_at(addr) {
            Some(Stmt::New { class, .. }) => *class,
            other => panic!("alloc site {site} does not address a New statement: {other:?}"),
        }
    }

    /// The call statement at `site`.
    pub fn call_site_stmt(&self, site: CallSiteId) -> &Stmt {
        let addr = self.call_site_addr(site);
        self.method(addr.method)
            .stmt_at(addr)
            .expect("call site addresses a statement")
    }

    /// Number of allocation sites.
    pub fn alloc_site_count(&self) -> usize {
        self.alloc_sites.len()
    }

    /// Number of call sites.
    pub fn call_site_count(&self) -> usize {
        self.call_sites.len()
    }

    /// The origin of the class declaring `method`.
    pub fn method_origin(&self, method: MethodId) -> Origin {
        self.class(self.method(method).class).origin
    }

    /// Total number of statements across all method bodies (a rough
    /// "bytecode size" measure used by the corpus and the tables).
    pub fn stmt_count(&self) -> usize {
        self.methods
            .iter()
            .map(|m| m.blocks.iter().map(|b| b.stmts.len() + 1).sum::<usize>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::ProgramBuilder;
    use crate::class::Origin;
    use crate::ty::Type;

    #[test]
    fn subtype_and_dispatch_follow_the_hierarchy() {
        let mut pb = ProgramBuilder::new();
        let object = pb.class("java.lang.Object", Origin::Framework).build();
        let mut base = pb.class("Base", Origin::App);
        base.set_super(object);
        let base = base.build();
        let mut derived = pb.class("Derived", Origin::App);
        derived.set_super(base);
        let derived = derived.build();

        let mut mb = pb.method(base, "run");
        mb.set_param_count(1);
        mb.ret(None);
        let base_run = mb.finish();

        let mut mb = pb.method(derived, "run");
        mb.set_param_count(1);
        mb.ret(None);
        let derived_run = mb.finish();

        let p = pb.finish();
        assert!(p.is_subtype(derived, base));
        assert!(p.is_subtype(derived, object));
        assert!(!p.is_subtype(base, derived));
        assert_eq!(p.dispatch(derived, base_run), Some(derived_run));
        assert_eq!(p.dispatch(base, base_run), Some(base_run));
        assert_eq!(p.concrete_subtypes(base), vec![base, derived]);
    }

    #[test]
    fn lookups_by_name() {
        let mut pb = ProgramBuilder::new();
        let mut cb = pb.class("A", Origin::App);
        let f = cb.field("x", Type::Int);
        let a = cb.build();
        let mut mb = pb.method(a, "m");
        mb.set_param_count(1);
        mb.ret(None);
        let m = mb.finish();
        let p = pb.finish();
        assert_eq!(p.class_by_name("A"), Some(a));
        assert_eq!(p.declared_method(a, "m"), Some(m));
        assert_eq!(p.declared_field(a, "x"), Some(f));
        assert_eq!(p.method_name(m), "A.m");
        assert_eq!(p.field_name(f), "x");
        assert!(p.class_by_name("Z").is_none());
    }
}
