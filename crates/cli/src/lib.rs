//! # sierra-cli — experiment drivers for the SIERRA reproduction
//!
//! The [`experiments`] module regenerates every table of the paper's
//! evaluation; the `sierra-cli` binary prints them. The timing benches
//! reuse the same runners so benchmark numbers and table numbers come
//! from one code path. [`flags`] holds the `--context`/`--budget`/
//! `--jobs` parser shared by every subcommand, and [`serve`] implements
//! the long-lived `sierra serve` analysis server over a warm summary
//! store.

pub mod experiments;
pub mod flags;
pub mod serve;
