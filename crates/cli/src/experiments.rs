//! Experiment runners: one function per table of the paper.
//!
//! The corpus runners ([`run_twenty`], [`run_fdroid`]) fan their apps
//! across the [`sierra_core::engine`] worker pool; a `jobs` argument of
//! `0` uses every available core. Rows come back in corpus order
//! regardless of scheduling, and an app whose analysis panics becomes an
//! error row instead of killing the run.

use corpus::{fdroid, twenty, EvalCounts, GroundTruth, HarmEval};
use eventracer::EventRacerConfig;
use sierra_core::{
    run_jobs, EngineError, Report, SessionBuilder, Sierra, SierraConfig, SierraResult, SummaryStore,
};
use std::sync::Arc;
use std::time::Duration;

/// Everything measured for one app (one row of Tables 3 and 4).
#[derive(Debug, Clone, Default)]
pub struct AppRow {
    /// App name.
    pub name: String,
    /// Set when the app's analysis panicked; every other field is then
    /// zero and the row is excluded from medians.
    pub error: Option<String>,
    /// Number of generated harnesses.
    pub harnesses: usize,
    /// Number of actions (SHBG nodes).
    pub actions: usize,
    /// HB edges (ordered pairs in the closed SHBG).
    pub hb_edges: usize,
    /// Percentage of the theoretical maximum.
    pub ordered_pct: f64,
    /// Racy pairs without action sensitivity.
    pub racy_without_as: usize,
    /// Racy pairs with action sensitivity.
    pub racy_with_as: usize,
    /// Race reports after refutation.
    pub after_refutation: usize,
    /// Ground-truth evaluation of SIERRA's reports.
    pub sierra_eval: EvalCounts,
    /// Callback recall measured by the soundness audit, in percent
    /// (reachable harness-known callbacks / all harness-known ones).
    pub soundness_reach_pct: f64,
    /// Call sites the soundness audit left unresolved (all reasons).
    pub soundness_unres: usize,
    /// Unresolved reflective sites (`forName`/`newInstance`/`invoke`).
    pub soundness_refl: usize,
    /// Unresolved intent-dispatch sites (`setClass`/`startActivity`/
    /// `sendBroadcast`).
    pub soundness_intent: usize,
    /// Reports triaged crash-capable (null-deref + use-before-init).
    pub triage_crash: usize,
    /// Reports triaged value-inconsistency.
    pub triage_value: usize,
    /// Reports triaged likely-benign.
    pub triage_benign: usize,
    /// Ground-truth scoring of the crash-capable verdicts.
    pub harm_eval: HarmEval,
    /// Dataflow worklist iterations spent by the triage stage.
    pub triage_iters: usize,
    /// Stage time: harm triage.
    pub t_triage: Duration,
    /// Pairs the message-history stage subjected to the product check.
    pub hist_checked: usize,
    /// Pairs the message-history stage discharged as unrealizable.
    pub hist_discharged: usize,
    /// Dead-callback CFG edges the history model exported to the refuter.
    pub hist_infeasible: usize,
    /// Stage time: message-history refutation.
    pub t_histories: Duration,
    /// Ground-truth evaluation of EventRacer's reports.
    pub eventracer_eval: EvalCounts,
    /// Races EventRacer reported.
    pub eventracer_races: usize,
    /// Per-method summaries served from the configured store (zero
    /// when the run has no store).
    pub summaries_reused: usize,
    /// Per-method summaries recomputed this run.
    pub summaries_recomputed: usize,
    /// Framework summaries served from the corpus-shared layer.
    pub summaries_shared: usize,
    /// Whether the whole points-to `Analysis` was reused (in-memory
    /// hit or persisted artifact blob).
    pub analysis_reused: bool,
    /// Corrupt cache entries this app's session treated as misses.
    pub cache_corrupt_misses: usize,
    /// Pointer-analysis worklist iterations.
    pub pa_worklist_iters: usize,
    /// Constraint-graph SCCs collapsed online by the pointer solver.
    pub pa_collapsed_sccs: usize,
    /// Constraint-graph nodes folded away by cycle collapse.
    pub pa_collapsed_nodes: usize,
    /// Call-graph edges.
    pub cg_edges: usize,
    /// SHBG rule applications (all rules).
    pub shbg_rule_apps: usize,
    /// Refuter paths explored.
    pub refuter_paths: usize,
    /// Candidate pairs pruned by the prefilter (escape + guard + constprop).
    pub pruned_pairs: usize,
    /// Statically-infeasible branch edges found by constant propagation.
    pub infeasible_edges: usize,
    /// Stage time: call graph + pointer analysis.
    pub t_cg_pa: Duration,
    /// Stage time: SHBG construction.
    pub t_hbg: Duration,
    /// Stage time: prefilter pruning.
    pub t_prefilter: Duration,
    /// Stage time: refutation.
    pub t_refutation: Duration,
    /// Stage time: the no-AS comparison pass (Table 3's RP-noAS column).
    pub t_compare: Duration,
    /// Whether the comparison pass ran overlapped with refutation.
    pub compare_overlapped: bool,
    /// Wall-clock saved by overlapping comparison with refutation.
    pub overlap_saved: Duration,
    /// Total pipeline time.
    pub t_total: Duration,
}

impl AppRow {
    /// A row for an app whose analysis died.
    pub fn failed(name: &str, message: &str) -> Self {
        Self {
            name: name.to_owned(),
            error: Some(message.to_owned()),
            ..Self::default()
        }
    }

    /// Every field of a row the unified [`Report`] carries — the Table
    /// 3/4 printers render these, so table numbers, `Display` output,
    /// and the serve protocol's JSON all come from one value. The
    /// ground-truth and EventRacer columns are not analysis output;
    /// [`run_app`] fills them afterwards.
    pub fn from_report(name: &str, report: &Report) -> Self {
        let m = &report.metrics;
        Self {
            name: name.to_owned(),
            error: None,
            harnesses: report.harness_count,
            actions: report.action_count,
            hb_edges: report.hb_edges,
            ordered_pct: report.hb_percent(),
            racy_without_as: report.racy_pairs_without_as,
            racy_with_as: report.racy_pairs_with_as,
            after_refutation: report.race_lines.len(),
            soundness_reach_pct: m.soundness.recall_pct(),
            soundness_unres: m.soundness.unresolved_sites,
            soundness_refl: m.soundness.reflective_sites,
            soundness_intent: m.soundness.intent_sites,
            triage_crash: m.triage.null_deref + m.triage.use_before_init,
            triage_value: m.triage.value_inconsistency,
            triage_benign: m.triage.likely_benign,
            triage_iters: m.triage.dataflow_iterations,
            t_triage: m.timings.triage,
            hist_checked: m.histories.pairs_checked,
            hist_discharged: m.histories.discharged_total(),
            hist_infeasible: m.histories.infeasible_exported,
            t_histories: m.timings.histories,
            summaries_reused: m.link.summaries_reused,
            summaries_recomputed: m.link.summaries_recomputed,
            summaries_shared: m.link.summaries_shared,
            analysis_reused: m.link.analysis_reused,
            cache_corrupt_misses: m.link.corrupt_misses,
            pa_worklist_iters: m.pointer.worklist_iterations,
            pa_collapsed_sccs: m.pointer.collapsed_sccs,
            pa_collapsed_nodes: m.pointer.collapsed_nodes,
            cg_edges: m.pointer.cg_edges,
            shbg_rule_apps: m.shbg.total_applications(),
            refuter_paths: m.refuter.paths,
            pruned_pairs: m.prefilter.pruned_total(),
            infeasible_edges: m.prefilter.infeasible_edges,
            t_cg_pa: m.timings.cg_pa,
            t_hbg: m.timings.hbg,
            t_prefilter: m.timings.prefilter,
            t_refutation: m.timings.refutation,
            t_compare: m.timings.compare,
            compare_overlapped: m.compare_overlapped,
            overlap_saved: m.overlap_saved,
            t_total: m.timings.total,
            ..Self::default()
        }
    }
}

/// Per-`(class, field)` harm verdicts of a SIERRA result: the flag is
/// whether *any* race on the field was triaged crash-capable. Empty when
/// the triage stage did not run.
pub fn sierra_harm_verdicts(result: &SierraResult) -> Vec<(String, String, bool)> {
    let p = &result.harness.app.program;
    let mut crash: std::collections::BTreeMap<(String, String), bool> =
        std::collections::BTreeMap::new();
    for r in &result.races {
        let Some(t) = &r.triage else { continue };
        let f = p.field(r.field);
        let key = (p.class_name(f.class).to_owned(), p.name(f.name).to_owned());
        *crash.entry(key).or_insert(false) |= t.harm.is_crash();
    }
    crash.into_iter().map(|((c, f), x)| (c, f, x)).collect()
}

/// Reported `(class, field)` groups of a SIERRA result.
pub fn sierra_groups(result: &SierraResult) -> Vec<(String, String)> {
    let p = &result.harness.app.program;
    let mut v: Vec<(String, String)> = result
        .races
        .iter()
        .map(|r| {
            let f = p.field(r.field);
            (p.class_name(f.class).to_owned(), p.name(f.name).to_owned())
        })
        .collect();
    v.sort();
    v.dedup();
    v
}

/// The persistence layer of a corpus run: the summary/artifact store
/// every app's session consults, plus (optionally) the corpus-wide
/// shared layer for framework-origin summaries. The two are usually
/// the same backing store — their key spaces are disjoint by
/// fingerprint — but a run may also share across per-app stores.
#[derive(Clone)]
pub struct CorpusCache {
    /// Per-app summary + analysis-artifact store.
    pub store: Arc<dyn SummaryStore>,
    /// Corpus-shared framework-summary layer, consulted before `store`
    /// for framework-origin methods.
    pub shared: Option<Arc<dyn SummaryStore>>,
}

impl CorpusCache {
    /// A cache over one store; `shared` additionally promotes
    /// framework summaries into the same store for corpus-wide reuse.
    pub fn new(store: Arc<dyn SummaryStore>, shared: bool) -> Self {
        let shared = shared.then(|| Arc::clone(&store));
        Self { store, shared }
    }
}

/// Runs the full pipeline on one app, routing the session through the
/// cache's stores when one is configured. Panics on an internal stage
/// failure, mirroring [`Sierra::analyze_app`].
pub fn analyze_app_cached(
    sierra_cfg: SierraConfig,
    app: android_model::AndroidApp,
    cache: Option<&CorpusCache>,
) -> SierraResult {
    let Some(cache) = cache else {
        return Sierra::with_config(sierra_cfg).analyze_app(app);
    };
    let mut builder = SessionBuilder::new(sierra_cfg)
        .app(app)
        .store(Arc::clone(&cache.store));
    if let Some(shared) = &cache.shared {
        builder = builder.shared_store(Arc::clone(shared));
    }
    builder
        .build()
        .and_then(|session| session.finish())
        .unwrap_or_else(|e| panic!("{e}"))
}

/// Runs SIERRA + EventRacer + ground-truth scoring on one app.
pub fn run_app(
    name: &str,
    app: android_model::AndroidApp,
    truth: &GroundTruth,
    sierra_cfg: SierraConfig,
    er_cfg: &EventRacerConfig,
) -> AppRow {
    run_app_cached(name, app, truth, sierra_cfg, er_cfg, None)
}

/// [`run_app`] with an optional persistence layer: sessions then reuse
/// per-method summaries and whole points-to artifacts from `cache`
/// instead of recomputing them. Reuse never changes the row's analysis
/// columns — only the cache counters and the time spent.
pub fn run_app_cached(
    name: &str,
    app: android_model::AndroidApp,
    truth: &GroundTruth,
    sierra_cfg: SierraConfig,
    er_cfg: &EventRacerConfig,
    cache: Option<&CorpusCache>,
) -> AppRow {
    let er_report = eventracer::detect(&app, er_cfg);
    let result = analyze_app_cached(sierra_cfg, app, cache);

    let s_groups = sierra_groups(&result);
    let sierra_eval = truth.evaluate(s_groups.iter().map(|(c, f)| (c.as_str(), f.as_str())));
    let e_groups = er_report.race_groups();
    let eventracer_eval = truth.evaluate(e_groups.iter().map(|(c, f)| (c.as_str(), f.as_str())));

    let harm_verdicts = sierra_harm_verdicts(&result);
    let harm_eval = truth.evaluate_harm(
        harm_verdicts
            .iter()
            .map(|(c, f, x)| (c.as_str(), f.as_str(), *x)),
    );

    let mut row = AppRow::from_report(name, &Report::from_result(&result));
    row.sierra_eval = sierra_eval;
    row.harm_eval = harm_eval;
    row.eventracer_eval = eventracer_eval;
    row.eventracer_races = er_report.races.len();
    row
}

fn row_or_error(outcome: Result<AppRow, EngineError>) -> AppRow {
    match outcome {
        Ok(row) => row,
        Err(e) => AppRow::failed(&e.item, &e.message),
    }
}

/// The corpus-wide symbol arena for one run, or `None` under
/// `--no-shared-intern` (every app then gets a private interner).
fn corpus_arena(shared_intern: bool) -> Option<Arc<apir::SymbolArena>> {
    shared_intern.then(|| Arc::new(apir::SymbolArena::new()))
}

/// Runs the 20-app dataset (Tables 3 and 4) on `jobs` workers.
pub fn run_twenty(sierra_cfg: SierraConfig, er_cfg: &EventRacerConfig, jobs: usize) -> Vec<AppRow> {
    run_twenty_with(sierra_cfg, er_cfg, jobs, true)
}

/// [`run_twenty`] with explicit control over shared interning. Apps are
/// built on the caller's thread over one corpus-wide arena (when
/// `shared_intern`), then analyzed on `jobs` workers; reports are
/// byte-identical either way and at any job count.
pub fn run_twenty_with(
    sierra_cfg: SierraConfig,
    er_cfg: &EventRacerConfig,
    jobs: usize,
    shared_intern: bool,
) -> Vec<AppRow> {
    run_twenty_cached(sierra_cfg, er_cfg, jobs, shared_intern, None)
}

/// [`run_twenty_with`] against an optional persistence layer. Workers
/// share the cache: a second pass over the same store reuses every
/// unchanged summary and points-to artifact, and with a shared layer
/// each framework-method summary is computed once corpus-wide.
pub fn run_twenty_cached(
    sierra_cfg: SierraConfig,
    er_cfg: &EventRacerConfig,
    jobs: usize,
    shared_intern: bool,
    cache: Option<&CorpusCache>,
) -> Vec<AppRow> {
    let items: Vec<(String, _)> = twenty::build_all_with(corpus_arena(shared_intern))
        .into_iter()
        .map(|(spec, app, truth)| (spec.name.to_owned(), (app, truth)))
        .collect();
    run_jobs(jobs, items, |name, (app, truth)| {
        run_app_cached(name, app, &truth, sierra_cfg, er_cfg, cache)
    })
    .into_iter()
    .map(row_or_error)
    .collect()
}

/// Runs the first `count` apps of the 174-app dataset (Table 5) on
/// `jobs` workers.
pub fn run_fdroid(count: usize, sierra_cfg: SierraConfig, jobs: usize) -> Vec<AppRow> {
    run_fdroid_with(count, sierra_cfg, jobs, true)
}

/// [`run_fdroid`] with explicit control over shared interning (see
/// [`run_twenty_with`]).
pub fn run_fdroid_with(
    count: usize,
    sierra_cfg: SierraConfig,
    jobs: usize,
    shared_intern: bool,
) -> Vec<AppRow> {
    run_fdroid_cached(count, sierra_cfg, jobs, shared_intern, None)
}

/// [`run_fdroid_with`] against an optional persistence layer (see
/// [`run_twenty_cached`]).
pub fn run_fdroid_cached(
    count: usize,
    sierra_cfg: SierraConfig,
    jobs: usize,
    shared_intern: bool,
    cache: Option<&CorpusCache>,
) -> Vec<AppRow> {
    let er_cfg = EventRacerConfig::default();
    let items: Vec<(String, _)> = fdroid::iter_apps_with(corpus_arena(shared_intern))
        .take(count)
        .map(|(i, app, truth)| (format!("app{i:03}"), (app, truth)))
        .collect();
    run_jobs(jobs, items, |name, (app, truth)| {
        run_app_cached(name, app, &truth, sierra_cfg, &er_cfg, cache)
    })
    .into_iter()
    .map(row_or_error)
    .collect()
}

/// The rows that analyzed successfully (medians are computed over these).
fn ok_rows(rows: &[AppRow]) -> Vec<&AppRow> {
    rows.iter().filter(|r| r.error.is_none()).collect()
}

/// Aggregate cache counters for one corpus pass; all zero when the run
/// had no persistence layer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Apps analyzed successfully (the denominator for
    /// `analyses_reused`).
    pub apps: usize,
    /// Apps whose whole points-to `Analysis` was reused.
    pub analyses_reused: usize,
    /// Per-app store summary hits, summed over successful rows.
    pub summaries_reused: usize,
    /// Summaries recomputed (store miss or first sight).
    pub summaries_recomputed: usize,
    /// Framework summaries served from the corpus-shared layer.
    pub summaries_shared: usize,
    /// Corrupt cache entries treated as misses.
    pub corrupt_misses: usize,
}

impl CacheStats {
    /// Sums the cache counters of a corpus run's successful rows.
    pub fn from_rows(rows: &[AppRow]) -> Self {
        let mut s = Self::default();
        for r in ok_rows(rows) {
            s.apps += 1;
            s.analyses_reused += usize::from(r.analysis_reused);
            s.summaries_reused += r.summaries_reused;
            s.summaries_recomputed += r.summaries_recomputed;
            s.summaries_shared += r.summaries_shared;
            s.corrupt_misses += r.cache_corrupt_misses;
        }
        s
    }

    /// The one-line `key=value` form the corpus commands print under
    /// `--cache-dir` (CI uploads it as the corpus hit stats).
    pub fn render(&self) -> String {
        format!(
            "cache: apps={} analyses_reused={} summaries_reused={} \
             summaries_recomputed={} summaries_shared={} corrupt_misses={}",
            self.apps,
            self.analyses_reused,
            self.summaries_reused,
            self.summaries_recomputed,
            self.summaries_shared,
            self.corrupt_misses,
        )
    }
}

/// Median of a numeric series (paper reports medians in Tables 3–5).
pub fn median<T: Copy + PartialOrd>(values: &[T]) -> Option<T> {
    if values.is_empty() {
        return None;
    }
    let mut v = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("comparable"));
    Some(v[v.len() / 2])
}

/// Renders Table 2 (app metadata and synthesized sizes).
pub fn table2() -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<17} {:>28} {:>12} {:>12} {:>10}\n",
        "App", "Installs", "Paper KB", "IR stmts", "Activities"
    ));
    for spec in twenty::TWENTY {
        let (app, _) = twenty::build_app(spec);
        out.push_str(&format!(
            "{:<17} {:>28} {:>12} {:>12} {:>10}\n",
            spec.name,
            spec.installs,
            spec.bytecode_kb,
            app.size_stmts(),
            app.manifest.activities.len(),
        ));
    }
    out
}

/// Renders Table 3 (effectiveness on the 20-app dataset), extended with
/// the triage verdict histogram (Crash / ValI / Benign columns) and a
/// corpus-wide crash-precision/recall summary line.
pub fn table3(rows: &[AppRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<17} {:>4} {:>7} {:>8} {:>5} {:>7} {:>7} {:>6} {:>5} {:>4} {:>5} {:>5} {:>5} {:>4} {:>6}\n",
        "App",
        "Harn",
        "Actions",
        "HBedges",
        "Ord%",
        "RP-noAS",
        "RP-AS",
        "AfterR",
        "True",
        "FP",
        "Miss",
        "EvRac",
        "Crash",
        "ValI",
        "Benign"
    ));
    for r in rows {
        if let Some(err) = &r.error {
            out.push_str(&format!("{:<17} ERROR: {err}\n", r.name));
            continue;
        }
        out.push_str(&format!(
            "{:<17} {:>4} {:>7} {:>8} {:>5.1} {:>7} {:>7} {:>6} {:>5} {:>4} {:>5} {:>5} {:>5} {:>4} {:>6}\n",
            r.name,
            r.harnesses,
            r.actions,
            r.hb_edges,
            r.ordered_pct,
            r.racy_without_as,
            r.racy_with_as,
            r.after_refutation,
            r.sierra_eval.true_races,
            r.sierra_eval.false_positives + r.sierra_eval.unplanted,
            r.sierra_eval.missed,
            r.eventracer_eval.true_races,
            r.triage_crash,
            r.triage_value,
            r.triage_benign,
        ));
    }
    out.push_str(&median_row(rows));
    out.push_str(&triage_summary(rows));
    out
}

/// Corpus-wide triage score: crash-capable precision/recall over every
/// harm-labelled site of the successfully analyzed rows, plus the
/// `triage_idioms` fixture — the twenty apps only carry guard-derived
/// benign labels, so the fixture supplies the crash-capable half of the
/// measurement.
pub fn triage_summary(rows: &[AppRow]) -> String {
    let mut total = HarmEval::default();
    for r in ok_rows(rows) {
        total.merge(r.harm_eval);
    }
    let (app, truth) = corpus::triage_idioms::triage_idioms_app();
    let result = Sierra::new().analyze_app(app);
    let verdicts = sierra_harm_verdicts(&result);
    total.merge(
        truth.evaluate_harm(
            verdicts
                .iter()
                .map(|(c, f, x)| (c.as_str(), f.as_str(), *x)),
        ),
    );
    format!(
        "triage: crash-precision {:.2}, crash-recall {:.2} over {} harm-scored site(s) (corpus + triage-idioms fixture)\n",
        total.precision(),
        total.recall(),
        total.scored
    )
}

/// Renders the Table 3/5 median summary line.
pub fn median_row(rows: &[AppRow]) -> String {
    let ok = ok_rows(rows);
    let m = |f: &dyn Fn(&AppRow) -> f64| {
        median(&ok.iter().map(|r| f(r)).collect::<Vec<_>>()).unwrap_or(0.0)
    };
    format!(
        "{:<17} {:>4} {:>7} {:>8} {:>5.1} {:>7} {:>7} {:>6} {:>5} {:>4} {:>5} {:>5} {:>5} {:>4} {:>6}\n",
        "MEDIAN",
        m(&|r| r.harnesses as f64),
        m(&|r| r.actions as f64),
        m(&|r| r.hb_edges as f64),
        m(&|r| r.ordered_pct),
        m(&|r| r.racy_without_as as f64),
        m(&|r| r.racy_with_as as f64),
        m(&|r| r.after_refutation as f64),
        m(&|r| r.sierra_eval.true_races as f64),
        m(&|r| (r.sierra_eval.false_positives + r.sierra_eval.unplanted) as f64),
        m(&|r| r.sierra_eval.missed as f64),
        m(&|r| r.eventracer_eval.true_races as f64),
        m(&|r| r.triage_crash as f64),
        m(&|r| r.triage_value as f64),
        m(&|r| r.triage_benign as f64),
    )
}

/// Renders Table 4 (per-stage efficiency: timings plus work counters).
pub fn table4(rows: &[AppRow]) -> String {
    let ms = |d: Duration| d.as_secs_f64() * 1e3;
    let mut out = String::new();
    out.push_str(&format!(
        "{:<17} {:>10} {:>8} {:>11} {:>12} {:>8} {:>10} {:>11} {:>11} {:>10} {:>8} {:>5} {:>7} {:>8} {:>8} {:>6} {:>6} {:>6} {:>7} {:>7} {:>7} {:>8}\n",
        "App",
        "CG+PA(ms)",
        "HBG(ms)",
        "Prefilt(ms)",
        "Refute(ms)",
        "Hist(ms)",
        "Triage(ms)",
        "Compare(ms)",
        "OvlSave(ms)",
        "Total(ms)",
        "PAiters",
        "SCCs",
        "CollNod",
        "CGedges",
        "HBapps",
        "Paths",
        "Pruned",
        "Infeas",
        "DFiters",
        "HistChk",
        "HistDis",
        "HistInf"
    ));
    for r in rows {
        if let Some(err) = &r.error {
            out.push_str(&format!("{:<17} ERROR: {err}\n", r.name));
            continue;
        }
        out.push_str(&format!(
            "{:<17} {:>10.2} {:>8.2} {:>11.2} {:>12.2} {:>8.2} {:>10.2} {:>11.2} {:>11.2} {:>10.2} {:>8} {:>5} {:>7} {:>8} {:>8} {:>6} {:>6} {:>6} {:>7} {:>7} {:>7} {:>8}\n",
            r.name,
            ms(r.t_cg_pa),
            ms(r.t_hbg),
            ms(r.t_prefilter),
            ms(r.t_refutation),
            ms(r.t_histories),
            ms(r.t_triage),
            ms(r.t_compare),
            ms(r.overlap_saved),
            ms(r.t_total),
            r.pa_worklist_iters,
            r.pa_collapsed_sccs,
            r.pa_collapsed_nodes,
            r.cg_edges,
            r.shbg_rule_apps,
            r.refuter_paths,
            r.pruned_pairs,
            r.infeasible_edges,
            r.triage_iters,
            r.hist_checked,
            r.hist_discharged,
            r.hist_infeasible,
        ));
    }
    let ok = ok_rows(rows);
    let med = |f: &dyn Fn(&AppRow) -> f64| {
        median(&ok.iter().map(|r| f(r)).collect::<Vec<_>>()).unwrap_or(0.0)
    };
    out.push_str(&format!(
        "{:<17} {:>10.2} {:>8.2} {:>11.2} {:>12.2} {:>8.2} {:>10.2} {:>11.2} {:>11.2} {:>10.2} {:>8.0} {:>5.0} {:>7.0} {:>8.0} {:>8.0} {:>6.0} {:>6.0} {:>6.0} {:>7.0} {:>7.0} {:>7.0} {:>8.0}\n",
        "MEDIAN",
        med(&|r| ms(r.t_cg_pa)),
        med(&|r| ms(r.t_hbg)),
        med(&|r| ms(r.t_prefilter)),
        med(&|r| ms(r.t_refutation)),
        med(&|r| ms(r.t_histories)),
        med(&|r| ms(r.t_triage)),
        med(&|r| ms(r.t_compare)),
        med(&|r| ms(r.overlap_saved)),
        med(&|r| ms(r.t_total)),
        med(&|r| r.pa_worklist_iters as f64),
        med(&|r| r.pa_collapsed_sccs as f64),
        med(&|r| r.pa_collapsed_nodes as f64),
        med(&|r| r.cg_edges as f64),
        med(&|r| r.shbg_rule_apps as f64),
        med(&|r| r.refuter_paths as f64),
        med(&|r| r.pruned_pairs as f64),
        med(&|r| r.infeasible_edges as f64),
        med(&|r| r.triage_iters as f64),
        med(&|r| r.hist_checked as f64),
        med(&|r| r.hist_discharged as f64),
        med(&|r| r.hist_infeasible as f64),
    ));
    out
}

/// Renders Table 5 (174-app medians).
pub fn table5(rows: &[AppRow]) -> String {
    let ok = ok_rows(rows);
    let mut out = String::new();
    out.push_str(&format!("{} apps analyzed", ok.len()));
    if ok.len() < rows.len() {
        out.push_str(&format!(" ({} failed)", rows.len() - ok.len()));
    }
    out.push_str("; medians:\n");
    for r in rows {
        if let Some(err) = &r.error {
            out.push_str(&format!("{:<17} ERROR: {err}\n", r.name));
        }
    }
    out.push_str(&format!(
        "{:<17} {:>4} {:>7} {:>8} {:>5} {:>7} {:>6}\n",
        "", "Harn", "Actions", "HBedges", "Ord%", "RP-AS", "AfterR"
    ));
    let m = |f: &dyn Fn(&AppRow) -> f64| {
        median(&ok.iter().map(|r| f(r)).collect::<Vec<_>>()).unwrap_or(0.0)
    };
    out.push_str(&format!(
        "{:<17} {:>4} {:>7} {:>8} {:>5.1} {:>7} {:>6}\n",
        "MEDIAN",
        m(&|r| r.harnesses as f64),
        m(&|r| r.actions as f64),
        m(&|r| r.hb_edges as f64),
        m(&|r| r.ordered_pct),
        m(&|r| r.racy_with_as as f64),
        m(&|r| r.after_refutation as f64),
    ));
    let ms = |d: Duration| d.as_secs_f64() * 1e3;
    out.push_str(&format!(
        "Efficiency medians: CG+PA {:.2} ms, HBG {:.2} ms, refutation {:.2} ms, total {:.2} ms\n",
        m(&|r| ms(r.t_cg_pa)),
        m(&|r| ms(r.t_hbg)),
        m(&|r| ms(r.t_refutation)),
        m(&|r| ms(r.t_total)),
    ));
    out.push_str(&format!(
        "Work medians: {:.0} PA worklist iterations, {:.0} CG edges, {:.0} HB rule applications, {:.0} refuter paths\n",
        m(&|r| r.pa_worklist_iters as f64),
        m(&|r| r.cg_edges as f64),
        m(&|r| r.shbg_rule_apps as f64),
        m(&|r| r.refuter_paths as f64),
    ));
    out
}

/// Runs the soundness-audit corpus: the twenty Table-2 apps plus the
/// reflection/intent fixture apps whose planted races are invisible
/// under the `ignore` opaque-call policy (see
/// `corpus::reflection_idioms`).
pub fn run_soundness_corpus(
    sierra_cfg: SierraConfig,
    er_cfg: &EventRacerConfig,
    jobs: usize,
    shared_intern: bool,
    cache: Option<&CorpusCache>,
) -> Vec<AppRow> {
    let mut rows = run_twenty_cached(sierra_cfg, er_cfg, jobs, shared_intern, cache);
    for (name, (app, truth)) in [
        (
            "ReflectionIdioms",
            corpus::reflection_idioms::reflection_idioms_app(),
        ),
        (
            "IntentIdioms",
            corpus::reflection_idioms::intent_idioms_app(),
        ),
    ] {
        rows.push(run_app_cached(name, app, &truth, sierra_cfg, er_cfg, cache));
    }
    rows
}

/// Renders one policy's rows of the soundness table (Table-3 style):
/// the audit columns (Reach%, Unres, Refl, Intent) next to the report
/// count and its ground-truth score.
pub fn table_soundness(policy: &str, rows: &[AppRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!("opaque-policy: {policy}\n"));
    out.push_str(&format!(
        "{:<17} {:>6} {:>5} {:>5} {:>6} {:>6} {:>5} {:>5}\n",
        "App", "Reach%", "Unres", "Refl", "Intent", "AfterR", "True", "Miss"
    ));
    for r in rows {
        if let Some(err) = &r.error {
            out.push_str(&format!("{:<17} ERROR: {err}\n", r.name));
            continue;
        }
        out.push_str(&format!(
            "{:<17} {:>6.1} {:>5} {:>5} {:>6} {:>6} {:>5} {:>5}\n",
            r.name,
            r.soundness_reach_pct,
            r.soundness_unres,
            r.soundness_refl,
            r.soundness_intent,
            r.after_refutation,
            r.sierra_eval.true_races,
            r.sierra_eval.missed,
        ));
    }
    let ok = ok_rows(rows);
    let m = |f: &dyn Fn(&AppRow) -> f64| {
        median(&ok.iter().map(|r| f(r)).collect::<Vec<_>>()).unwrap_or(0.0)
    };
    out.push_str(&format!(
        "{:<17} {:>6.1} {:>5.0} {:>5.0} {:>6.0} {:>6.0} {:>5.0} {:>5.0}\n",
        "MEDIAN",
        m(&|r| r.soundness_reach_pct),
        m(&|r| r.soundness_unres as f64),
        m(&|r| r.soundness_refl as f64),
        m(&|r| r.soundness_intent as f64),
        m(&|r| r.after_refutation as f64),
        m(&|r| r.sierra_eval.true_races as f64),
        m(&|r| r.sierra_eval.missed as f64),
    ));
    out
}

/// Corpus-wide race recall of one policy's rows, in percent: planted
/// true races found over planted races findable (found + missed).
pub fn corpus_race_recall(rows: &[AppRow]) -> f64 {
    let ok = ok_rows(rows);
    let found: usize = ok.iter().map(|r| r.sierra_eval.true_races).sum();
    let missed: usize = ok.iter().map(|r| r.sierra_eval.missed).sum();
    if found + missed == 0 {
        100.0
    } else {
        100.0 * found as f64 / (found + missed) as f64
    }
}

/// The per-policy summary lines closing the soundness table: corpus
/// race recall plus the median audit reach of each policy.
pub fn soundness_summary(policies: &[(&str, &[AppRow])]) -> String {
    let mut out = String::new();
    for (name, rows) in policies {
        let ok = ok_rows(rows);
        let found: usize = ok.iter().map(|r| r.sierra_eval.true_races).sum();
        let missed: usize = ok.iter().map(|r| r.sierra_eval.missed).sum();
        let reach =
            median(&ok.iter().map(|r| r.soundness_reach_pct).collect::<Vec<_>>()).unwrap_or(0.0);
        out.push_str(&format!(
            "soundness[{name:<7}]: race-recall {:.1}% ({found} found, {missed} missed), median callback reach {reach:.1}%\n",
            corpus_race_recall(rows),
        ));
    }
    out
}

/// Aggregate comparison against EventRacer (§6.4's averages).
pub fn comparison_summary(rows: &[AppRow]) -> String {
    let ok = ok_rows(rows);
    let n = ok.len().max(1) as f64;
    let avg = |f: &dyn Fn(&AppRow) -> f64| ok.iter().map(|r| f(r)).sum::<f64>() / n;
    format!(
        "SIERRA:     avg {:.1} reports, {:.1} true races, {:.1} FPs, {:.1} missed\n\
         EventRacer: avg {:.1} reports, {:.1} true races, {:.1} FPs, {:.1} missed\n\
         → the dynamic detector misses {:.1} true races per app on average\n",
        avg(&|r| r.after_refutation as f64),
        avg(&|r| r.sierra_eval.true_races as f64),
        avg(&|r| (r.sierra_eval.false_positives + r.sierra_eval.unplanted) as f64),
        avg(&|r| r.sierra_eval.missed as f64),
        avg(&|r| r.eventracer_races as f64),
        avg(&|r| r.eventracer_eval.true_races as f64),
        avg(&|r| (r.eventracer_eval.false_positives + r.eventracer_eval.unplanted) as f64),
        avg(&|r| r.eventracer_eval.missed as f64),
        avg(&|r| r.sierra_eval.true_races as f64 - r.eventracer_eval.true_races as f64),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_handles_odd_even_and_empty() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median(&[4, 1, 3, 2]), Some(3)); // upper median
        assert_eq!(median::<i32>(&[]), None);
        assert_eq!(median(&[7]), Some(7));
    }

    #[test]
    fn table2_lists_all_twenty_apps() {
        let t = table2();
        for spec in corpus::TWENTY {
            assert!(t.contains(spec.name), "missing {}", spec.name);
        }
        assert!(t.contains("Installs"));
    }

    #[test]
    fn run_app_produces_consistent_rows() {
        let (app, truth) = corpus::figures::intra_component();
        let row = run_app(
            "fig1",
            app,
            &truth,
            SierraConfig::default(),
            &EventRacerConfig::default(),
        );
        assert_eq!(row.harnesses, 1);
        assert!(row.actions > 0);
        assert!(row.racy_with_as <= row.racy_without_as);
        assert!(row.after_refutation <= row.racy_with_as);
        assert_eq!(row.sierra_eval.missed, 0);
        assert!(row.pa_worklist_iters > 0);
        assert!(row.cg_edges > 0);
        assert!(row.shbg_rule_apps > 0);
        // Rendering includes the row and a median line.
        let t3 = table3(std::slice::from_ref(&row));
        assert!(t3.contains("fig1") && t3.contains("MEDIAN"));
        let t4 = table4(std::slice::from_ref(&row));
        assert!(t4.contains("CG+PA") && t4.contains("PAiters"));
        assert!(t4.contains("Prefilt(ms)") && t4.contains("Pruned") && t4.contains("Infeas"));
        assert!(t4.contains("Compare(ms)") && t4.contains("OvlSave(ms)"));
        assert!(t4.contains("SCCs") && t4.contains("CollNod"));
        assert!(t4.contains("Hist(ms)") && t4.contains("HistChk"));
        assert!(t4.contains("HistDis") && t4.contains("HistInf"));
        let t5 = table5(std::slice::from_ref(&row));
        assert!(t5.contains("medians"));
        let cmp = comparison_summary(std::slice::from_ref(&row));
        assert!(cmp.contains("SIERRA"));
    }

    #[test]
    fn soundness_table_tracks_policy_recall() {
        // One fixture app per policy stands in for the corpus sweep the
        // `soundness` subcommand runs; the fixture's planted race is the
        // recall signal (invisible under ignore, found under resolve).
        let er = EventRacerConfig::default();
        let row_for = |policy: sierra_core::OpaquePolicy| {
            let (app, truth) = corpus::reflection_idioms::intent_idioms_app();
            let cfg = SierraConfig::builder().opaque_policy(policy).build();
            run_app_cached("IntentIdioms", app, &truth, cfg, &er, None)
        };
        let ignore = vec![row_for(sierra_core::OpaquePolicy::Ignore)];
        let resolve = vec![row_for(sierra_core::OpaquePolicy::Resolve)];

        assert_eq!(ignore[0].sierra_eval.true_races, 0);
        assert_eq!(resolve[0].sierra_eval.missed, 0);
        assert!(ignore[0].soundness_intent >= 2, "setClass + startActivity");
        assert!(resolve[0].soundness_intent < ignore[0].soundness_intent);
        assert!(resolve[0].soundness_reach_pct >= ignore[0].soundness_reach_pct);
        assert_eq!(corpus_race_recall(&ignore), 0.0);
        assert_eq!(corpus_race_recall(&resolve), 100.0);

        let table = table_soundness("ignore", &ignore);
        assert!(table.contains("opaque-policy: ignore"), "{table}");
        assert!(
            table.contains("Reach%") && table.contains("Intent"),
            "{table}"
        );
        assert!(
            table.contains("IntentIdioms") && table.contains("MEDIAN"),
            "{table}"
        );

        let summary = soundness_summary(&[("ignore", &ignore), ("resolve", &resolve)]);
        assert!(summary.contains("soundness[ignore "), "{summary}");
        assert!(summary.contains("race-recall 0.0%"), "{summary}");
        assert!(summary.contains("race-recall 100.0%"), "{summary}");
    }

    #[test]
    fn cached_corpus_pass_reuses_summaries_and_artifacts() {
        let dir = std::env::temp_dir().join(format!("sierra-corpus-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store: Arc<dyn SummaryStore> =
            Arc::new(sierra_core::DiskStore::new(&dir).expect("cache dir"));
        let cache = CorpusCache::new(store, true);
        let cfg = SierraConfig::default();
        let er = EventRacerConfig::default();
        let run = |cache: Option<&CorpusCache>| {
            let (app, truth) = corpus::figures::intra_component();
            run_app_cached("fig1", app, &truth, cfg, &er, cache)
        };

        let cold = run(Some(&cache));
        assert!(!cold.analysis_reused, "first pass computes everything");
        assert!(cold.summaries_recomputed > 0);

        let warm = run(Some(&cache));
        assert!(warm.analysis_reused, "second pass reuses the artifact");
        assert_eq!(warm.summaries_recomputed, 0);
        assert!(warm.summaries_reused > 0);

        // Reuse never changes the analysis columns.
        let baseline = run(None);
        for row in [&cold, &warm] {
            assert_eq!(row.actions, baseline.actions);
            assert_eq!(row.hb_edges, baseline.hb_edges);
            assert_eq!(row.racy_with_as, baseline.racy_with_as);
            assert_eq!(row.after_refutation, baseline.after_refutation);
        }

        let stats = CacheStats::from_rows(&[cold, warm]);
        assert_eq!(stats.apps, 2);
        assert_eq!(stats.analyses_reused, 1);
        assert_eq!(stats.corrupt_misses, 0);
        let line = stats.render();
        assert!(
            line.starts_with("cache: apps=2 analyses_reused=1"),
            "{line}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shared_layer_serves_framework_summaries_across_apps() {
        // One shared in-memory layer, two different apps with private
        // per-app stores: the second app's framework-origin methods are
        // all served from the layer the first app populated.
        let shared: Arc<dyn SummaryStore> = Arc::new(sierra_core::MemoryStore::new());
        let cfg = SierraConfig::default();
        let er = EventRacerConfig::default();
        let run = |app, truth: &GroundTruth| {
            let cache = CorpusCache {
                store: Arc::new(sierra_core::MemoryStore::new()),
                shared: Some(Arc::clone(&shared)),
            };
            run_app_cached("app", app, truth, cfg, &er, Some(&cache))
        };
        let (app1, truth1) = corpus::figures::intra_component();
        let first = run(app1, &truth1);
        assert_eq!(first.summaries_shared, 0, "nothing to share yet");

        let (app2, truth2) = corpus::figures::inter_component();
        let second = run(app2, &truth2);
        assert!(second.summaries_shared > 0, "framework summaries shared");
    }

    #[test]
    fn rows_derive_from_the_unified_report() {
        // The table printers and the `Display`/JSON renderers must agree
        // because they read the same `Report` value.
        let (app, _) = corpus::figures::intra_component();
        let result = Sierra::new().analyze_app(app);
        let report = Report::from_result(&result);
        let row = AppRow::from_report("fig1", &report);
        assert_eq!(row.harnesses, result.harness_count);
        assert_eq!(row.actions, result.action_count);
        assert_eq!(row.after_refutation, result.races.len());
        assert_eq!(
            row.pa_worklist_iters,
            result.metrics.pointer.worklist_iterations
        );
        assert_eq!(row.pruned_pairs, result.metrics.prefilter.pruned_total());
        // Evals stay zeroed until run_app fills them.
        assert_eq!(row.sierra_eval.true_races, 0);
        assert!(row.error.is_none());
    }

    #[test]
    fn error_rows_render_and_are_excluded_from_medians() {
        let (app, truth) = corpus::figures::intra_component();
        let ok = run_app(
            "fig1",
            app,
            &truth,
            SierraConfig::default(),
            &EventRacerConfig::default(),
        );
        let bad = AppRow::failed("broken.app", "index out of bounds");
        let rows = vec![ok.clone(), bad];
        for render in [table3(&rows), table4(&rows), table5(&rows)] {
            assert!(render.contains("broken.app"), "{render}");
            assert!(render.contains("ERROR: index out of bounds"), "{render}");
        }
        // The median line matches the one computed without the error row.
        assert_eq!(median_row(&rows), median_row(std::slice::from_ref(&ok)));
    }
}
