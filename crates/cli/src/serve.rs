//! `sierra serve` — a long-lived analysis server over a warm summary
//! store.
//!
//! The server reads **line-delimited JSON** requests from stdin (or a
//! Unix socket with `--socket PATH`) and streams events back, one JSON
//! object per line. Requests are fanned across the same `--jobs` worker
//! pool the corpus engine uses; every session shares one
//! [`SummaryStore`], so repeated analyses of the same (or slightly
//! edited) app reuse per-method summaries and — when no solver-relevant
//! statement changed — the whole points-to analysis. With `--cache-dir`
//! the store persists to disk and survives server restarts. Sessions
//! also share one [`apir::SymbolArena`] (unless `--no-shared-intern`),
//! so the framework's class/method/field names are interned once per
//! server process rather than once per request; summary keys and
//! reports are identical either way.
//!
//! ## Requests
//!
//! ```json
//! {"id": 1, "op": "analyze", "path": "fixtures/fig1_intra_component.sierra"}
//! {"id": 2, "op": "analyze", "name": "MyApp", "source": "class ... { ... }"}
//! {"op": "shutdown"}
//! ```
//!
//! ## Events
//!
//! Each analyze request produces a stream of `stage` events (wall-clock
//! milliseconds plus that stage's work counters), then a `report` event
//! carrying the full [`Report`] JSON, then a `done` event with the
//! store-reuse counters:
//!
//! ```json
//! {"id":1,"event":"stage","stage":"pointer","ms":1.2,"counters":{...}}
//! {"id":1,"event":"report","report":{...}}
//! {"id":1,"event":"done","races":2,"summaries_reused":0,"summaries_recomputed":9,"analysis_reused":false}
//! {"id":1,"event":"error","message":"..."}
//! ```
//!
//! Reuse never changes results: a warm `report` payload is
//! byte-identical to the cold one (the `timings_ms` group excepted).

use crate::flags::CommonFlags;
use apir::SymbolArena;
use sierra_core::engine::effective_jobs;
use sierra_core::{
    json::{num, obj},
    AnalysisSession, DiskStore, Json, MemoryStore, Report, SessionBuilder, SierraConfig,
    SummaryStore,
};
use std::io::{BufRead, BufReader, Write};
use std::path::Path;
use std::sync::{mpsc, Arc, Mutex};

/// The line-oriented response sink, shared by the worker pool. Each
/// event is rendered to one line and written under the lock, so lines
/// from concurrent requests interleave but never tear.
type SharedWriter = Arc<Mutex<Box<dyn Write + Send>>>;

/// One analyze request, resolved to inline source.
struct Request {
    id: Option<u64>,
    name: String,
    text: String,
}

/// A parsed input line.
enum ParsedLine {
    Analyze(Request),
    Shutdown,
}

/// Opens the summary store the server sessions share: on-disk under
/// `cache_dir` when given (created if absent; capped at `max_mb`
/// megabytes with oldest-first eviction when given), in-memory
/// otherwise.
pub fn open_store(
    cache_dir: Option<&str>,
    max_mb: Option<u64>,
) -> Result<Arc<dyn SummaryStore>, String> {
    match cache_dir {
        Some(dir) => {
            let store = match max_mb {
                Some(mb) => DiskStore::with_max_bytes(dir, mb * 1024 * 1024),
                None => DiskStore::new(dir),
            }
            .map_err(|e| format!("cannot open cache dir {dir:?}: {e}"))?;
            Ok(Arc::new(store))
        }
        None => Ok(Arc::new(MemoryStore::new())),
    }
}

/// Runs the server until a `shutdown` request (or end of input).
pub fn run(flags: &CommonFlags, socket: Option<String>) -> Result<(), String> {
    let store = open_store(flags.cache_dir.as_deref(), flags.cache_max_mb)?;
    // `--shared-store` reuses the same backing store as the corpus-wide
    // framework-summary layer: the key spaces are disjoint by
    // fingerprint, and with `--cache-dir` the sharing then also
    // persists across server restarts.
    let shared = flags.shared_store.then(|| Arc::clone(&store));
    // One arena for the whole server lifetime: requests intern into it
    // concurrently and it only grows (append-only), so a long-lived
    // server stops allocating name strings once the vocabulary is warm.
    let arena = flags.shared_intern.then(|| Arc::new(SymbolArena::new()));
    match socket {
        Some(path) => serve_socket(&path, flags.config, flags.jobs, store, shared, arena),
        None => {
            let reader = BufReader::new(std::io::stdin());
            let writer: SharedWriter = Arc::new(Mutex::new(Box::new(std::io::stdout())));
            serve_connection(
                reader,
                &writer,
                flags.config,
                flags.jobs,
                store,
                shared,
                arena,
            );
            Ok(())
        }
    }
}

/// Accepts connections on a Unix socket, serving each with the shared
/// store until one sends `shutdown`. The socket file is replaced on
/// bind and removed on exit.
#[cfg(unix)]
fn serve_socket(
    path: &str,
    config: SierraConfig,
    jobs: usize,
    store: Arc<dyn SummaryStore>,
    shared: Option<Arc<dyn SummaryStore>>,
    arena: Option<Arc<SymbolArena>>,
) -> Result<(), String> {
    let _ = std::fs::remove_file(path);
    let listener = std::os::unix::net::UnixListener::bind(path)
        .map_err(|e| format!("cannot bind socket {path:?}: {e}"))?;
    eprintln!("sierra serve: listening on {path}");
    for conn in listener.incoming() {
        let stream = conn.map_err(|e| format!("accept failed: {e}"))?;
        let reader = BufReader::new(
            stream
                .try_clone()
                .map_err(|e| format!("cannot clone socket stream: {e}"))?,
        );
        let writer: SharedWriter = Arc::new(Mutex::new(Box::new(stream)));
        if serve_connection(
            reader,
            &writer,
            config,
            jobs,
            Arc::clone(&store),
            shared.clone(),
            arena.clone(),
        ) {
            break;
        }
    }
    let _ = std::fs::remove_file(path);
    Ok(())
}

#[cfg(not(unix))]
fn serve_socket(
    _path: &str,
    _config: SierraConfig,
    _jobs: usize,
    _store: Arc<dyn SummaryStore>,
    _shared: Option<Arc<dyn SummaryStore>>,
    _arena: Option<Arc<SymbolArena>>,
) -> Result<(), String> {
    Err("--socket requires a Unix platform; use stdin mode instead".to_owned())
}

/// Serves one connection: parses request lines, fans analyze jobs across
/// `jobs` workers (0 = all cores), and returns whether `shutdown` was
/// requested. Already-queued requests are drained before returning.
fn serve_connection<R: BufRead>(
    reader: R,
    writer: &SharedWriter,
    config: SierraConfig,
    jobs: usize,
    store: Arc<dyn SummaryStore>,
    shared: Option<Arc<dyn SummaryStore>>,
    arena: Option<Arc<SymbolArena>>,
) -> bool {
    let workers = effective_jobs(jobs, usize::MAX);
    let mut shutdown = false;
    std::thread::scope(|scope| {
        let (tx, rx) = mpsc::channel::<Request>();
        let rx = Arc::new(Mutex::new(rx));
        for _ in 0..workers {
            let rx = Arc::clone(&rx);
            let writer = Arc::clone(writer);
            let store = Arc::clone(&store);
            let shared = shared.clone();
            let arena = arena.clone();
            scope.spawn(move || loop {
                // Receive under the lock, release before analyzing so the
                // other workers can pick up queued requests.
                let next = {
                    let guard = rx.lock().unwrap_or_else(|e| e.into_inner());
                    guard.recv()
                };
                match next {
                    Ok(req) => {
                        handle_request(req, config, &store, shared.clone(), arena.clone(), &writer)
                    }
                    Err(_) => break, // sender dropped: input finished
                }
            });
        }
        for line in reader.lines() {
            let Ok(line) = line else { break };
            if line.trim().is_empty() {
                continue;
            }
            match parse_request(&line) {
                Ok(ParsedLine::Shutdown) => {
                    shutdown = true;
                    break;
                }
                Ok(ParsedLine::Analyze(req)) => {
                    let _ = tx.send(req);
                }
                Err((id, message)) => emit(writer, error_event(id, &message)),
            }
        }
        drop(tx); // workers drain the queue, then exit
    });
    shutdown
}

/// Parses one request line. Errors carry the request id when one was
/// readable, so the client can correlate the error event.
fn parse_request(line: &str) -> Result<ParsedLine, (Option<u64>, String)> {
    let value = Json::parse(line).map_err(|e| (None, format!("malformed request: {e}")))?;
    let id = value.get("id").and_then(Json::as_u64);
    let fail = |message: String| Err((id, message));
    match value.get("op").and_then(Json::as_str) {
        Some("shutdown") => Ok(ParsedLine::Shutdown),
        Some("analyze") => {
            if let Some(path) = value.get("path").and_then(Json::as_str) {
                let text = match std::fs::read_to_string(path) {
                    Ok(t) => t,
                    Err(e) => return fail(format!("cannot read {path:?}: {e}")),
                };
                let name = Path::new(path)
                    .file_stem()
                    .map_or_else(|| path.to_owned(), |s| s.to_string_lossy().into_owned());
                Ok(ParsedLine::Analyze(Request { id, name, text }))
            } else {
                match (
                    value.get("name").and_then(Json::as_str),
                    value.get("source").and_then(Json::as_str),
                ) {
                    (Some(name), Some(source)) => Ok(ParsedLine::Analyze(Request {
                        id,
                        name: name.to_owned(),
                        text: source.to_owned(),
                    })),
                    _ => fail("analyze needs \"path\" or \"name\"+\"source\"".to_owned()),
                }
            }
        }
        Some(op) => fail(format!("unknown op {op:?}")),
        None => fail("missing \"op\"".to_owned()),
    }
}

fn handle_request(
    req: Request,
    config: SierraConfig,
    store: &Arc<dyn SummaryStore>,
    shared: Option<Arc<dyn SummaryStore>>,
    arena: Option<Arc<SymbolArena>>,
    out: &SharedWriter,
) {
    if let Err(e) = analyze(&req, config, store, shared, arena, out) {
        emit(out, error_event(req.id, &e.to_string()));
    }
}

/// Drives one session stage by stage, streaming a `stage` event after
/// each, then the `report` and `done` events.
fn analyze(
    req: &Request,
    config: SierraConfig,
    store: &Arc<dyn SummaryStore>,
    shared: Option<Arc<dyn SummaryStore>>,
    arena: Option<Arc<SymbolArena>>,
    out: &SharedWriter,
) -> Result<(), sierra_core::SessionError> {
    let mut builder = SessionBuilder::new(config)
        .source(req.name.clone(), req.text.clone())
        .store(Arc::clone(store));
    if let Some(shared) = shared {
        builder = builder.shared_store(shared);
    }
    if let Some(arena) = arena {
        builder = builder.arena(arena);
    }
    let mut session = builder.build()?;
    let id = req.id;

    let harnesses = session.harness()?.harness_count();
    emit_stage(out, id, &session, "harness", |m| {
        (ms(m.timings.harness), vec![("harnesses", num(harnesses))])
    });
    session.pointer()?;
    emit_stage(out, id, &session, "pointer", |m| {
        (
            ms(m.timings.cg_pa),
            vec![
                ("worklist_iterations", num(m.pointer.worklist_iterations)),
                ("cg_edges", num(m.pointer.cg_edges)),
                ("summaries_reused", num(m.link.summaries_reused)),
                ("summaries_recomputed", num(m.link.summaries_recomputed)),
                ("summaries_shared", num(m.link.summaries_shared)),
                ("analysis_reused", Json::Bool(m.link.analysis_reused)),
            ],
        )
    });
    session.shbg()?;
    emit_stage(out, id, &session, "shbg", |m| {
        (
            ms(m.timings.hbg),
            vec![
                ("rule_applications", num(m.shbg.total_applications())),
                ("fixpoint_rounds", num(m.shbg.fixpoint_rounds)),
            ],
        )
    });
    let pairs = session.candidates()?.len();
    emit_stage(out, id, &session, "candidates", |_| {
        (0.0, vec![("pairs", num(pairs))])
    });
    let pruned = session.prefilter()?.pruned.len();
    emit_stage(out, id, &session, "prefilter", |m| {
        (ms(m.timings.prefilter), vec![("pruned", num(pruned))])
    });
    let races = session.refute()?.len();
    emit_stage(out, id, &session, "refute", |m| {
        (
            ms(m.timings.refutation),
            vec![
                ("races", num(races)),
                ("paths", num(m.refuter.paths)),
                ("refuted", num(m.refuter.refuted)),
            ],
        )
    });

    let result = session.finish()?;
    let report = Report::from_result(&result);
    emit(
        out,
        obj(vec![
            ("id", id_json(id)),
            ("event", Json::Str("report".to_owned())),
            ("report", report.render_json()),
        ]),
    );
    let link = result.metrics.link;
    emit(
        out,
        obj(vec![
            ("id", id_json(id)),
            ("event", Json::Str("done".to_owned())),
            ("races", num(result.races.len())),
            ("summaries_reused", num(link.summaries_reused)),
            ("summaries_recomputed", num(link.summaries_recomputed)),
            ("summaries_shared", num(link.summaries_shared)),
            ("analysis_reused", Json::Bool(link.analysis_reused)),
        ]),
    );
    Ok(())
}

fn ms(d: std::time::Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn id_json(id: Option<u64>) -> Json {
    id.map_or(Json::Null, |n| Json::Num(n as f64))
}

fn error_event(id: Option<u64>, message: &str) -> Json {
    obj(vec![
        ("id", id_json(id)),
        ("event", Json::Str("error".to_owned())),
        ("message", Json::Str(message.to_owned())),
    ])
}

fn emit_stage(
    out: &SharedWriter,
    id: Option<u64>,
    session: &AnalysisSession,
    stage: &str,
    payload: impl FnOnce(&sierra_core::StageMetrics) -> (f64, Vec<(&'static str, Json)>),
) {
    let (elapsed_ms, counters) = payload(session.metrics());
    emit(
        out,
        obj(vec![
            ("id", id_json(id)),
            ("event", Json::Str("stage".to_owned())),
            ("stage", Json::Str(stage.to_owned())),
            ("ms", Json::Num(elapsed_ms)),
            ("counters", obj(counters)),
        ]),
    );
}

/// Writes one event as a single line and flushes, so clients see the
/// stream as it happens.
fn emit(out: &SharedWriter, event: Json) {
    let mut line = event.render();
    line.push('\n');
    let mut w = out.lock().unwrap_or_else(|e| e.into_inner());
    let _ = w.write_all(line.as_bytes());
    let _ = w.flush();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    const FIG1: &str = include_str!("../../../fixtures/fig1_intra_component.sierra");

    /// A writer that shares its buffer with the test, since the
    /// connection writer is type-erased.
    #[derive(Clone)]
    struct Shared(Arc<Mutex<Vec<u8>>>);

    impl Write for Shared {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().expect("buffer lock").extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn drive(input: &str, store: Arc<dyn SummaryStore>) -> (bool, Vec<Json>) {
        drive_shared(input, store, None)
    }

    fn drive_shared(
        input: &str,
        store: Arc<dyn SummaryStore>,
        shared: Option<Arc<dyn SummaryStore>>,
    ) -> (bool, Vec<Json>) {
        let buffer = Arc::new(Mutex::new(Vec::new()));
        let writer: SharedWriter = Arc::new(Mutex::new(Box::new(Shared(Arc::clone(&buffer)))));
        let shutdown = serve_connection(
            Cursor::new(input.to_owned()),
            &writer,
            SierraConfig::default(),
            1,
            store,
            shared,
            Some(Arc::new(SymbolArena::new())),
        );
        let bytes = buffer.lock().expect("buffer lock").clone();
        let text = String::from_utf8(bytes).expect("utf-8 output");
        let events = text
            .lines()
            .map(|l| Json::parse(l).expect("every output line is JSON"))
            .collect();
        (shutdown, events)
    }

    fn analyze_request(id: u64) -> String {
        obj(vec![
            ("id", num(id as usize)),
            ("op", Json::Str("analyze".to_owned())),
            ("name", Json::Str("Fig1".to_owned())),
            ("source", Json::Str(FIG1.to_owned())),
        ])
        .render()
    }

    fn events_for<'a>(events: &'a [Json], id: u64, kind: &str) -> Vec<&'a Json> {
        events
            .iter()
            .filter(|e| {
                e.get("id").and_then(Json::as_u64) == Some(id)
                    && e.get("event").and_then(Json::as_str) == Some(kind)
            })
            .collect()
    }

    #[test]
    fn two_requests_stream_identical_reports_and_reuse_summaries() {
        let input = format!(
            "{}\n{}\n{}\n",
            analyze_request(1),
            analyze_request(2),
            r#"{"op":"shutdown"}"#
        );
        let (shutdown, events) = drive(&input, Arc::new(MemoryStore::new()));
        assert!(shutdown, "shutdown request ends the connection");

        // Both requests stream the full stage sequence.
        for id in [1, 2] {
            let stages: Vec<&str> = events_for(&events, id, "stage")
                .iter()
                .map(|e| e.get("stage").and_then(Json::as_str).expect("stage name"))
                .collect();
            assert_eq!(
                stages,
                [
                    "harness",
                    "pointer",
                    "shbg",
                    "candidates",
                    "prefilter",
                    "refute"
                ],
                "request {id}"
            );
        }

        // The reports are identical up to the run-dependent groups (wall
        // clock and reuse telemetry): strip those and compare the
        // rendered JSON byte for byte.
        let strip = |e: &Json| {
            let mut report = e.get("report").expect("report payload").clone();
            if let Json::Obj(members) = &mut report {
                members.retain(|(k, _)| k != "timings_ms" && k != "link");
            }
            report.render()
        };
        let r1 = events_for(&events, 1, "report");
        let r2 = events_for(&events, 2, "report");
        assert_eq!(r1.len(), 1);
        assert_eq!(r2.len(), 1);
        assert_eq!(strip(r1[0]), strip(r2[0]), "warm report must match cold");

        // The first request is cold, the second fully warm.
        let done1 = events_for(&events, 1, "done")[0];
        let done2 = events_for(&events, 2, "done")[0];
        assert_eq!(
            done1.get("summaries_reused").and_then(Json::as_u64),
            Some(0)
        );
        let recomputed = done1
            .get("summaries_recomputed")
            .and_then(Json::as_u64)
            .expect("cold run recomputes");
        assert!(recomputed > 0);
        assert_eq!(
            done2.get("summaries_reused").and_then(Json::as_u64),
            Some(recomputed)
        );
        assert_eq!(
            done2.get("summaries_recomputed").and_then(Json::as_u64),
            Some(0)
        );
        assert_eq!(
            done2.get("analysis_reused").and_then(Json::as_bool),
            Some(true)
        );
    }

    #[test]
    fn shared_store_serves_framework_summaries_across_different_apps() {
        const FIG2: &str = include_str!("../../../fixtures/fig2_inter_component.sierra");
        let fig2_request = obj(vec![
            ("id", num(2)),
            ("op", Json::Str("analyze".to_owned())),
            ("name", Json::Str("Fig2".to_owned())),
            ("source", Json::Str(FIG2.to_owned())),
        ])
        .render();
        let input = format!(
            "{}\n{}\n{}\n",
            analyze_request(1),
            fig2_request,
            r#"{"op":"shutdown"}"#
        );

        // One backing store doubling as the shared layer, as `--shared-store`
        // wires it. The apps are different, so per-app summary keys are
        // disjoint — only the framework layer can carry hits across them.
        let store: Arc<dyn SummaryStore> = Arc::new(MemoryStore::new());
        let (_, events) = drive_shared(&input, Arc::clone(&store), Some(Arc::clone(&store)));
        let done2 = events_for(&events, 2, "done")[0];
        let shared_hits = done2
            .get("summaries_shared")
            .and_then(Json::as_u64)
            .expect("counter present");
        assert!(shared_hits >= 1, "framework summaries must cross apps");

        // Sharing changes work done, never results: the same request
        // without any sharing reports identically (modulo run-dependent
        // groups).
        let (_, baseline) = drive(
            &format!("{fig2_request}\n"),
            Arc::new(MemoryStore::new()) as Arc<dyn SummaryStore>,
        );
        let strip = |e: &Json| {
            let mut report = e.get("report").expect("report payload").clone();
            if let Json::Obj(members) = &mut report {
                members.retain(|(k, _)| k != "timings_ms" && k != "link");
            }
            report.render()
        };
        assert_eq!(
            strip(events_for(&events, 2, "report")[0]),
            strip(events_for(&baseline, 2, "report")[0]),
        );
    }

    #[test]
    fn bad_requests_become_error_events() {
        let input = concat!(
            "this is not json\n",
            "{\"id\":7,\"op\":\"frobnicate\"}\n",
            "{\"id\":8,\"op\":\"analyze\"}\n",
            "{\"id\":9,\"op\":\"analyze\",\"path\":\"/nonexistent/x.sierra\"}\n",
            "{\"id\":10,\"op\":\"analyze\",\"name\":\"Bad\",\"source\":\"class {\"}\n",
        );
        let (shutdown, events) = drive(input, Arc::new(MemoryStore::new()));
        assert!(!shutdown, "input ended without a shutdown request");
        assert_eq!(events.len(), 5, "{events:?}");
        assert!(events
            .iter()
            .all(|e| e.get("event").and_then(Json::as_str) == Some("error")));
        // Errors past parsing echo the request id.
        for id in [7u64, 8, 9, 10] {
            assert_eq!(events_for(&events, id, "error").len(), 1, "id {id}");
        }
        let invalid = events_for(&events, 10, "error")[0];
        let message = invalid
            .get("message")
            .and_then(Json::as_str)
            .expect("message");
        assert!(message.contains("invalid app"), "{message}");
    }

    #[test]
    fn path_requests_resolve_the_app_name_from_the_file_stem() {
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../fixtures/fig1_intra_component.sierra"
        );
        let input = format!(
            "{}\n",
            obj(vec![
                ("id", num(1)),
                ("op", Json::Str("analyze".to_owned())),
                ("path", Json::Str(path.to_owned())),
            ])
            .render()
        );
        let (_, events) = drive(&input, Arc::new(MemoryStore::new()));
        let report = events_for(&events, 1, "report")[0]
            .get("report")
            .expect("report payload")
            .clone();
        assert_eq!(
            report.get("app").and_then(Json::as_str),
            Some("fig1_intra_component")
        );
    }
}
