//! Shared command-line flags.
//!
//! Every `sierra-cli` subcommand accepts the same analysis knobs:
//!
//! ```text
//! --context <SPEC>      context selector: insensitive | action:K | k-cfa:K
//!                       | k-obj:K | hybrid:K          (default action:1)
//! --budget <N>          refuter path budget             (default 5000)
//! --jobs <N>            corpus worker threads; 0 = all cores   (default 0)
//! --refute-jobs <N>     refutation worker threads per app;
//!                       0 = all cores                   (default 1)
//! --no-prefilter        disable the pre-refutation static pruning
//!                       stage (escape/guard/constprop)
//! --no-cycle-collapse   disable online cycle collapse in the pointer
//!                       solver (ablation)
//! --worklist <POLICY>   pointer solver worklist: topo-lrf | fifo
//!                       (default topo-lrf)
//! --opaque-policy <P>   opaque call sites (reflection, intent
//!                       dispatch): ignore | resolve | havoc
//!                       (default ignore)
//! --no-overlap-compare  run the comparison pass serially instead of
//!                       overlapped with refutation
//! --no-histories        disable the message-history refutation stage
//!                       (ablation; reproduces the pre-stage pipeline
//!                       byte-for-byte)
//! --no-triage           disable the post-refutation harm-triage stage
//!                       (reports then carry no harm annotation)
//! --min-harm <LEVEL>    drop reports triaged below LEVEL: benign |
//!                       value | use-before-init | null-deref
//! --cache-dir <PATH>    persist per-method summaries to PATH (the
//!                       `serve` subcommand's warm store; created if
//!                       absent)
//! --cache-max-mb <N>    cap the on-disk store (summary files and
//!                       artifact blobs) at N megabytes, evicting
//!                       oldest entries first (requires --cache-dir;
//!                       0 or absent = unbounded)
//! --shared-store        consult a corpus-shared layer for
//!                       framework-method summaries before per-app
//!                       stores, so the framework slice is summarized
//!                       once per corpus/serve process
//! --no-artifact-cache   do not persist or load whole-`Analysis`
//!                       artifact blobs (ablation; summary files and
//!                       in-memory artifact reuse are unaffected)
//! --no-shared-intern    give every app/request its own private string
//!                       interner instead of the process-wide shared
//!                       symbol arena (ablation; reports are identical
//!                       either way)
//! ```
//!
//! [`CommonFlags::parse`] consumes the recognized flags (and their
//! values) from the argument list, leaving positional arguments and
//! subcommand-specific flags in place.

use sierra_core::SierraConfig;

/// Parsed values of the shared flags.
#[derive(Debug, Clone)]
pub struct CommonFlags {
    /// `--jobs N`: engine worker threads (0 = available parallelism).
    pub jobs: usize,
    /// `--cache-dir PATH`: on-disk summary store directory, if any.
    pub cache_dir: Option<String>,
    /// `--cache-max-mb N`: on-disk store size cap in megabytes.
    pub cache_max_mb: Option<u64>,
    /// Intern names into one process-wide [`apir::SymbolArena`] shared
    /// across apps/requests (`true` unless `--no-shared-intern`).
    pub shared_intern: bool,
    /// `--shared-store`: share framework-method summaries across all
    /// apps/requests through a corpus-shared layer.
    pub shared_store: bool,
    /// The pipeline configuration assembled from `--context`/`--budget`.
    pub config: SierraConfig,
}

impl Default for CommonFlags {
    fn default() -> Self {
        Self {
            jobs: 0,
            cache_dir: None,
            cache_max_mb: None,
            shared_intern: true,
            shared_store: false,
            config: SierraConfig::default(),
        }
    }
}

impl CommonFlags {
    /// Extracts `--context`, `--budget`, `--jobs`, `--refute-jobs`,
    /// `--no-prefilter`, `--no-cycle-collapse`, `--worklist`,
    /// `--opaque-policy`, `--no-overlap-compare`, `--no-histories`,
    /// `--no-triage`,
    /// `--min-harm`, `--cache-dir`, `--cache-max-mb`,
    /// `--no-shared-intern`, `--shared-store`, and
    /// `--no-artifact-cache` from `args`, removing
    /// each recognized flag (and its value, if any). Unknown flags and
    /// positionals are untouched.
    pub fn parse(args: &mut Vec<String>) -> Result<Self, String> {
        let mut builder = SierraConfig::builder();
        let mut jobs = 0usize;
        let cache_dir = take_flag(args, "--cache-dir")?;
        let cache_max_mb = match take_flag(args, "--cache-max-mb")? {
            Some(v) => Some(
                v.parse::<u64>()
                    .map_err(|_| format!("invalid --cache-max-mb {v:?}: expected megabytes"))?,
            ),
            None => None,
        };
        let shared_intern = !take_switch(args, "--no-shared-intern");
        let shared_store = take_switch(args, "--shared-store");
        if take_switch(args, "--no-artifact-cache") {
            builder = builder.no_artifact_cache(true);
        }
        if let Some(spec) = take_flag(args, "--context")? {
            let selector = spec
                .parse()
                .map_err(|e: pointer::ParseSelectorError| e.to_string())?;
            builder = builder.selector(selector);
        }
        if let Some(v) = take_flag(args, "--budget")? {
            let budget = v
                .parse()
                .map_err(|_| format!("invalid --budget {v:?}: expected a count"))?;
            builder = builder.refuter_budget(budget);
        }
        if let Some(v) = take_flag(args, "--jobs")? {
            jobs = v
                .parse()
                .map_err(|_| format!("invalid --jobs {v:?}: expected a count"))?;
        }
        if let Some(v) = take_flag(args, "--refute-jobs")? {
            let refute_jobs = v
                .parse()
                .map_err(|_| format!("invalid --refute-jobs {v:?}: expected a count"))?;
            builder = builder.refute_jobs(refute_jobs);
        }
        if take_switch(args, "--no-prefilter") {
            builder = builder.no_prefilter(true);
        }
        if take_switch(args, "--no-cycle-collapse") {
            builder = builder.no_cycle_collapse(true);
        }
        if let Some(v) = take_flag(args, "--worklist")? {
            let policy: pointer::WorklistPolicy = v.parse()?;
            builder = builder.worklist_policy(policy);
        }
        if let Some(v) = take_flag(args, "--opaque-policy")? {
            let policy: pointer::OpaquePolicy = v.parse()?;
            builder = builder.opaque_policy(policy);
        }
        if take_switch(args, "--no-overlap-compare") {
            builder = builder.overlap_compare(false);
        }
        if take_switch(args, "--no-histories") {
            builder = builder.no_histories(true);
        }
        if take_switch(args, "--no-triage") {
            builder = builder.no_triage(true);
        }
        if let Some(v) = take_flag(args, "--min-harm")? {
            let level: sierra_core::Harm = v.parse().map_err(|e| format!("{e}"))?;
            builder = builder.min_harm(level);
        }
        Ok(Self {
            jobs,
            cache_dir,
            cache_max_mb,
            shared_intern,
            shared_store,
            config: builder.build(),
        })
    }
}

/// Removes `flag` and its value from `args`; errors when the value is
/// missing.
fn take_flag(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    let Some(i) = args.iter().position(|a| a == flag) else {
        return Ok(None);
    };
    if i + 1 >= args.len() {
        return Err(format!("{flag} requires a value"));
    }
    let value = args.remove(i + 1);
    args.remove(i);
    Ok(Some(value))
}

/// Removes `flag` and its value from `args` without interpreting it
/// (subcommand-specific flags like `--apps`).
pub fn take_raw_flag(args: &mut Vec<String>, flag: &str) -> Option<String> {
    take_flag(args, flag).ok().flatten()
}

/// Removes a value-less switch from `args`; returns whether it was
/// present.
fn take_switch(args: &mut Vec<String>, flag: &str) -> bool {
    match args.iter().position(|a| a == flag) {
        Some(i) => {
            args.remove(i);
            true
        }
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pointer::SelectorKind;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|a| (*a).to_owned()).collect()
    }

    #[test]
    fn defaults_when_no_flags() {
        let mut args = argv(&["table3"]);
        let flags = CommonFlags::parse(&mut args).expect("parse");
        assert_eq!(flags.jobs, 0);
        assert_eq!(flags.config.selector, SelectorKind::ActionSensitive(1));
        assert_eq!(args, argv(&["table3"]));
    }

    #[test]
    fn parses_and_consumes_all_shared_flags() {
        let mut args = argv(&[
            "table5",
            "--jobs",
            "4",
            "--apps",
            "10",
            "--context",
            "k-obj:2",
            "--budget",
            "100",
            "--refute-jobs",
            "8",
        ]);
        let flags = CommonFlags::parse(&mut args).expect("parse");
        assert_eq!(flags.jobs, 4);
        assert_eq!(flags.config.selector, SelectorKind::KObj(2));
        assert_eq!(flags.config.refuter.max_paths, 100);
        assert_eq!(flags.config.refute_jobs, 8);
        // Subcommand flags survive.
        assert_eq!(args, argv(&["table5", "--apps", "10"]));
    }

    #[test]
    fn refute_jobs_defaults_to_serial() {
        let mut args = argv(&["table4"]);
        let flags = CommonFlags::parse(&mut args).expect("parse");
        assert_eq!(flags.config.refute_jobs, 1);
    }

    #[test]
    fn no_prefilter_switch_is_consumed() {
        let mut args = argv(&["analyze", "fig1", "--no-prefilter"]);
        let flags = CommonFlags::parse(&mut args).expect("parse");
        assert!(flags.config.no_prefilter);
        assert_eq!(args, argv(&["analyze", "fig1"]));

        let mut args = argv(&["analyze", "fig1"]);
        let flags = CommonFlags::parse(&mut args).expect("parse");
        assert!(!flags.config.no_prefilter);
    }

    #[test]
    fn pointer_ablation_flags_are_consumed() {
        let mut args = argv(&[
            "table4",
            "--no-cycle-collapse",
            "--worklist",
            "fifo",
            "--no-overlap-compare",
        ]);
        let flags = CommonFlags::parse(&mut args).expect("parse");
        assert!(!flags.config.pointer_options.cycle_collapse);
        assert_eq!(
            flags.config.pointer_options.worklist,
            pointer::WorklistPolicy::Fifo
        );
        assert!(!flags.config.overlap_compare);
        assert_eq!(args, argv(&["table4"]));

        let mut args = argv(&["table4"]);
        let flags = CommonFlags::parse(&mut args).expect("parse");
        assert!(flags.config.pointer_options.cycle_collapse);
        assert_eq!(
            flags.config.pointer_options.worklist,
            pointer::WorklistPolicy::TopoLrf
        );
        assert!(flags.config.overlap_compare);
    }

    #[test]
    fn opaque_policy_flag_is_consumed() {
        let mut args = argv(&["table3", "--opaque-policy", "resolve"]);
        let flags = CommonFlags::parse(&mut args).expect("parse");
        assert_eq!(
            flags.config.pointer_options.opaque_policy,
            pointer::OpaquePolicy::Resolve
        );
        assert_eq!(args, argv(&["table3"]));

        let mut args = argv(&["table3", "--opaque-policy", "havoc"]);
        let flags = CommonFlags::parse(&mut args).expect("parse");
        assert_eq!(
            flags.config.pointer_options.opaque_policy,
            pointer::OpaquePolicy::Havoc
        );

        let mut args = argv(&["table3"]);
        let flags = CommonFlags::parse(&mut args).expect("parse");
        assert_eq!(
            flags.config.pointer_options.opaque_policy,
            pointer::OpaquePolicy::Ignore
        );

        assert!(CommonFlags::parse(&mut argv(&["x", "--opaque-policy", "guess"])).is_err());
        assert!(CommonFlags::parse(&mut argv(&["x", "--opaque-policy"])).is_err());
    }

    #[test]
    fn triage_flags_are_consumed() {
        let mut args = argv(&["analyze", "fig1", "--no-triage"]);
        let flags = CommonFlags::parse(&mut args).expect("parse");
        assert!(flags.config.no_triage);
        assert_eq!(flags.config.min_harm, None);
        assert_eq!(args, argv(&["analyze", "fig1"]));

        let mut args = argv(&["analyze", "fig1", "--min-harm", "use-before-init"]);
        let flags = CommonFlags::parse(&mut args).expect("parse");
        assert!(!flags.config.no_triage);
        assert_eq!(
            flags.config.min_harm,
            Some(sierra_core::Harm::UseBeforeInit)
        );
        assert_eq!(args, argv(&["analyze", "fig1"]));

        assert!(CommonFlags::parse(&mut argv(&["x", "--min-harm", "fatal"])).is_err());
        assert!(CommonFlags::parse(&mut argv(&["x", "--min-harm"])).is_err());
    }

    #[test]
    fn cache_dir_flag_is_consumed() {
        let mut args = argv(&["serve", "--cache-dir", "/tmp/sierra-cache"]);
        let flags = CommonFlags::parse(&mut args).expect("parse");
        assert_eq!(flags.cache_dir.as_deref(), Some("/tmp/sierra-cache"));
        assert_eq!(args, argv(&["serve"]));

        let mut args = argv(&["serve"]);
        let flags = CommonFlags::parse(&mut args).expect("parse");
        assert_eq!(flags.cache_dir, None);

        assert!(CommonFlags::parse(&mut argv(&["serve", "--cache-dir"])).is_err());
    }

    #[test]
    fn histories_switch_is_consumed() {
        let mut args = argv(&["analyze", "fig1", "--no-histories"]);
        let flags = CommonFlags::parse(&mut args).expect("parse");
        assert!(flags.config.no_histories);
        assert_eq!(args, argv(&["analyze", "fig1"]));

        let mut args = argv(&["analyze", "fig1"]);
        let flags = CommonFlags::parse(&mut args).expect("parse");
        assert!(!flags.config.no_histories);
    }

    #[test]
    fn cache_max_mb_flag_is_consumed() {
        let mut args = argv(&["serve", "--cache-dir", "/tmp/c", "--cache-max-mb", "64"]);
        let flags = CommonFlags::parse(&mut args).expect("parse");
        assert_eq!(flags.cache_max_mb, Some(64));
        assert_eq!(args, argv(&["serve"]));

        let mut args = argv(&["serve"]);
        let flags = CommonFlags::parse(&mut args).expect("parse");
        assert_eq!(flags.cache_max_mb, None);

        assert!(CommonFlags::parse(&mut argv(&["x", "--cache-max-mb", "big"])).is_err());
        assert!(CommonFlags::parse(&mut argv(&["x", "--cache-max-mb"])).is_err());
    }

    #[test]
    fn shared_intern_switch_is_consumed() {
        let mut args = argv(&["table3", "--no-shared-intern"]);
        let flags = CommonFlags::parse(&mut args).expect("parse");
        assert!(!flags.shared_intern);
        assert_eq!(args, argv(&["table3"]));

        let mut args = argv(&["table3"]);
        let flags = CommonFlags::parse(&mut args).expect("parse");
        assert!(flags.shared_intern);
        assert!(CommonFlags::default().shared_intern);
    }

    #[test]
    fn shared_store_switch_is_consumed() {
        let mut args = argv(&["table3", "--shared-store"]);
        let flags = CommonFlags::parse(&mut args).expect("parse");
        assert!(flags.shared_store);
        assert_eq!(args, argv(&["table3"]));

        let mut args = argv(&["table3"]);
        let flags = CommonFlags::parse(&mut args).expect("parse");
        assert!(!flags.shared_store);
        assert!(!CommonFlags::default().shared_store);
    }

    #[test]
    fn no_artifact_cache_switch_is_consumed() {
        let mut args = argv(&["analyze", "fig1", "--no-artifact-cache"]);
        let flags = CommonFlags::parse(&mut args).expect("parse");
        assert!(flags.config.no_artifact_cache);
        assert_eq!(args, argv(&["analyze", "fig1"]));

        let mut args = argv(&["analyze", "fig1"]);
        let flags = CommonFlags::parse(&mut args).expect("parse");
        assert!(!flags.config.no_artifact_cache);
    }

    #[test]
    fn rejects_bad_values() {
        assert!(CommonFlags::parse(&mut argv(&["x", "--context", "bogus"])).is_err());
        assert!(CommonFlags::parse(&mut argv(&["x", "--jobs", "many"])).is_err());
        assert!(CommonFlags::parse(&mut argv(&["x", "--budget"])).is_err());
        assert!(CommonFlags::parse(&mut argv(&["x", "--refute-jobs", "-1"])).is_err());
        assert!(CommonFlags::parse(&mut argv(&["x", "--refute-jobs"])).is_err());
        assert!(CommonFlags::parse(&mut argv(&["x", "--worklist", "dfs"])).is_err());
        assert!(CommonFlags::parse(&mut argv(&["x", "--worklist"])).is_err());
    }

    #[test]
    fn selector_specs_round_trip() {
        for spec in [
            "insensitive",
            "action:1",
            "action:2",
            "k-cfa:3",
            "k-obj:2",
            "hybrid:1",
        ] {
            let parsed: SelectorKind = spec.parse().expect(spec);
            assert_eq!(parsed.to_string(), spec);
        }
        assert_eq!(
            "action".parse::<SelectorKind>(),
            Ok(SelectorKind::ActionSensitive(1))
        );
        assert!("insensitive:1".parse::<SelectorKind>().is_err());
        assert!("k-obj:".parse::<SelectorKind>().is_err());
    }
}
