//! `sierra-cli` — reproduce the paper's tables from the command line.
//!
//! ```text
//! sierra-cli table2                 # Table 2: the 20-app dataset
//! sierra-cli table3                 # Table 3: effectiveness (runs everything)
//! sierra-cli table4                 # Table 4: per-stage efficiency + counters
//! sierra-cli table5 [--apps N]      # Table 5: the 174-app dataset (medians)
//! sierra-cli compare                # §6.4 SIERRA vs EventRacer summary
//! sierra-cli analyze <AppName>      # one Table-2 app, with race reports
//! sierra-cli figures                # run the Figure 1/2/8 apps
//! sierra-cli verify <AppName>       # dynamically verify static reports
//! sierra-cli soundness              # call-graph soundness audit across
//!                                   # the ignore/resolve/havoc policies
//! sierra-cli serve [--socket PATH]  # line-delimited JSON analysis server
//! ```
//!
//! Every subcommand also accepts the shared analysis flags:
//!
//! ```text
//! --context <SPEC>     insensitive | action:K | k-cfa:K | k-obj:K | hybrid:K
//! --budget <N>         refuter path budget
//! --jobs <N>           corpus engine worker threads (0 = all cores)
//! --refute-jobs <N>    per-app refutation worker threads (0 = all cores)
//! --no-prefilter       disable pre-refutation static pruning
//! --no-cycle-collapse  disable online cycle collapse in the pointer solver
//! --worklist <POLICY>  pointer solver worklist: topo-lrf | fifo
//! --opaque-policy <P>  opaque call sites (reflection, intent dispatch):
//!                      ignore | resolve | havoc
//! --no-overlap-compare run the comparison pass serially, not overlapped
//! --no-histories       disable the message-history refutation stage
//! --no-triage          disable post-refutation harm triage
//! --min-harm <LEVEL>   drop reports below LEVEL: benign | value |
//!                      use-before-init | null-deref
//! --cache-dir <PATH>   persist per-method summaries and whole points-to
//!                      artifacts across runs
//! --cache-max-mb <N>   cap the on-disk store (summaries + artifact blobs),
//!                      evicting oldest first
//! --shared-store       serve framework-origin summaries from a corpus-wide
//!                      shared layer (computed once per framework fingerprint)
//! --no-artifact-cache  summaries only: never persist or load whole
//!                      points-to artifacts (ablation)
//! --no-shared-intern   private per-app interners instead of the shared
//!                      symbol arena (ablation)
//! ```
//!
//! Corpus commands run against `--cache-dir` print an aggregate
//! `cache: …` hit-stats line after their table; a second identical run
//! reuses every summary and points-to artifact from the first.

use eventracer::EventRacerConfig;
use sierra_cli::experiments;
use sierra_cli::flags::{take_raw_flag, CommonFlags};
use sierra_core::Sierra;

const USAGE: &str = "usage: sierra-cli <table2|table3|table4|table5 [--apps N]|compare|analyze <App>|figures|verify <App>|soundness|serve [--socket PATH]>\n\
                     shared flags: --context <SPEC> --budget <N> --jobs <N> --refute-jobs <N> --no-prefilter\n\
                     \x20             --no-cycle-collapse --worklist <topo-lrf|fifo> --opaque-policy <ignore|resolve|havoc>\n\
                     \x20             --no-overlap-compare --no-histories --no-triage\n\
                     \x20             --min-harm <benign|value|use-before-init|null-deref>\n\
                     \x20             --cache-dir <PATH> --cache-max-mb <N> --shared-store --no-artifact-cache\n\
                     \x20             --no-shared-intern";

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let common = match CommonFlags::parse(&mut args) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let cmd = args.first().cloned().unwrap_or_else(|| "help".to_owned());
    // Any persistence flag turns the run's cache layer on: `--cache-dir`
    // alone persists summaries + artifacts, `--shared-store` alone still
    // shares framework summaries (in memory) within this corpus pass,
    // and together the sharing persists across runs.
    let cache = if common.cache_dir.is_some() || common.shared_store {
        match sierra_cli::serve::open_store(common.cache_dir.as_deref(), common.cache_max_mb) {
            Ok(store) => Some(experiments::CorpusCache::new(store, common.shared_store)),
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
        }
    } else {
        None
    };
    // The aggregate hit-stats line, printed after a corpus table when a
    // cache is configured (CI parses this to track reuse across runs).
    let print_cache_stats = |rows: &[experiments::AppRow]| {
        if cache.is_some() {
            println!("{}", experiments::CacheStats::from_rows(rows).render());
        }
    };
    let sierra_cfg = common.config;
    let jobs = common.jobs;
    let er_cfg = EventRacerConfig::default();
    match cmd.as_str() {
        "table2" => print!("{}", experiments::table2()),
        "table3" => {
            let rows = experiments::run_twenty_cached(
                sierra_cfg,
                &er_cfg,
                jobs,
                common.shared_intern,
                cache.as_ref(),
            );
            print!("{}", experiments::table3(&rows));
            print_cache_stats(&rows);
        }
        "table4" => {
            let rows = experiments::run_twenty_cached(
                sierra_cfg,
                &er_cfg,
                jobs,
                common.shared_intern,
                cache.as_ref(),
            );
            print!("{}", experiments::table4(&rows));
            print_cache_stats(&rows);
        }
        "table5" => {
            let count = take_raw_flag(&mut args, "--apps")
                .and_then(|v| v.parse().ok())
                .unwrap_or(corpus::fdroid::APP_COUNT);
            let rows = experiments::run_fdroid_cached(
                count,
                sierra_cfg,
                jobs,
                common.shared_intern,
                cache.as_ref(),
            );
            print!("{}", experiments::table5(&rows));
            print_cache_stats(&rows);
        }
        "compare" => {
            let rows = experiments::run_twenty_cached(
                sierra_cfg,
                &er_cfg,
                jobs,
                common.shared_intern,
                cache.as_ref(),
            );
            print!("{}", experiments::comparison_summary(&rows));
            print_cache_stats(&rows);
        }
        "analyze" => {
            let Some(name) = args.get(1) else {
                eprintln!("usage: sierra-cli analyze <AppName>");
                std::process::exit(2);
            };
            // The triage fixture is analyzable by name alongside the
            // Table-2 apps: it is the corpus entry carrying
            // crash-capable harm labels.
            let (app, truth) = if name.eq_ignore_ascii_case("TriageIdioms") {
                corpus::triage_idioms::triage_idioms_app()
            } else {
                let Some(spec) = corpus::TWENTY
                    .iter()
                    .find(|s| s.name.eq_ignore_ascii_case(name))
                else {
                    eprintln!(
                        "unknown app {name:?}; see `sierra-cli table2` for names (or TriageIdioms)"
                    );
                    std::process::exit(2);
                };
                corpus::twenty::build_app(*spec)
            };
            let result = experiments::analyze_app_cached(sierra_cfg, app, cache.as_ref());
            print!("{result}");
            let groups = experiments::sierra_groups(&result);
            let eval = truth.evaluate(groups.iter().map(|(c, f)| (c.as_str(), f.as_str())));
            println!(
                "ground truth: {} true races, {} false positives, {} missed",
                eval.true_races,
                eval.false_positives + eval.unplanted,
                eval.missed
            );
            if result.triage_ran {
                let verdicts = experiments::sierra_harm_verdicts(&result);
                let harm = truth.evaluate_harm(
                    verdicts
                        .iter()
                        .map(|(c, f, x)| (c.as_str(), f.as_str(), *x)),
                );
                println!(
                    "harm triage: crash-precision {:.2}, crash-recall {:.2} over {} harm-scored site(s)",
                    harm.precision(),
                    harm.recall(),
                    harm.scored
                );
            }
        }
        "verify" => {
            let Some(name) = args.get(1) else {
                eprintln!("usage: sierra-cli verify <AppName>");
                std::process::exit(2);
            };
            let Some(spec) = corpus::TWENTY
                .iter()
                .find(|s| s.name.eq_ignore_ascii_case(name))
            else {
                eprintln!("unknown app {name:?}; see `sierra-cli table2` for names");
                std::process::exit(2);
            };
            let (app, _) = corpus::twenty::build_app(*spec);
            let app_for_verify = app.clone();
            let result = Sierra::with_config(sierra_cfg).analyze_app(app);
            let p = &result.harness.app.program;
            println!(
                "{}: {} static race report(s); verifying dynamically…",
                spec.name,
                result.races.len()
            );
            let mut groups: Vec<(String, String)> = result
                .races
                .iter()
                .map(|r| {
                    let f = p.field(r.field);
                    (p.class_name(f.class).to_owned(), p.name(f.name).to_owned())
                })
                .collect();
            groups.sort();
            groups.dedup();
            for (class, field) in groups {
                let verdict = eventracer::verify_race(
                    &app_for_verify,
                    &class,
                    &field,
                    eventracer::VerifyConfig::default(),
                );
                println!("  {class}.{field}: {verdict:?}");
            }
        }
        "figures" => {
            for (label, (app, truth)) in [
                (
                    "Figure 1 (intra-component)",
                    corpus::figures::intra_component(),
                ),
                (
                    "Figure 2 (inter-component)",
                    corpus::figures::inter_component(),
                ),
                (
                    "Figure 8 (refutation)",
                    corpus::figures::open_sudoku_guard(),
                ),
            ] {
                let result = Sierra::with_config(sierra_cfg).analyze_app(app);
                let groups = experiments::sierra_groups(&result);
                let eval = truth.evaluate(groups.iter().map(|(c, f)| (c.as_str(), f.as_str())));
                println!(
                    "{label}: {} racy pairs, {} after refutation, {} true, {} FP, {} missed",
                    result.racy_pairs_with_as,
                    result.races.len(),
                    eval.true_races,
                    eval.false_positives + eval.unplanted,
                    eval.missed
                );
            }
        }
        "soundness" => {
            // One corpus pass per policy; `--opaque-policy` on the
            // command line is irrelevant here (the audit sweeps all
            // three), but every other shared flag applies to each pass.
            let mut sections: Vec<(&str, Vec<experiments::AppRow>)> = Vec::new();
            for policy in sierra_core::OpaquePolicy::ALL {
                let mut cfg = sierra_cfg;
                cfg.pointer_options.opaque_policy = policy;
                let rows = experiments::run_soundness_corpus(
                    cfg,
                    &er_cfg,
                    jobs,
                    common.shared_intern,
                    cache.as_ref(),
                );
                sections.push((policy.as_str(), rows));
            }
            for (policy, rows) in &sections {
                print!("{}", experiments::table_soundness(policy, rows));
                println!();
            }
            let summary: Vec<(&str, &[experiments::AppRow])> = sections
                .iter()
                .map(|(p, rows)| (*p, rows.as_slice()))
                .collect();
            print!("{}", experiments::soundness_summary(&summary));
        }
        "serve" => {
            let socket = take_raw_flag(&mut args, "--socket");
            if let Err(e) = sierra_cli::serve::run(&common, socket) {
                eprintln!("{e}");
                std::process::exit(2);
            }
        }
        "help" | "--help" | "-h" => println!("{USAGE}"),
        other => {
            eprintln!("unknown subcommand {other:?}\n{USAGE}");
            std::process::exit(2);
        }
    }
}
