//! The worker-pool engine must not change results: a parallel sweep has
//! to render byte-identical tables to a serial one, and a poisoned app
//! must surface as an ERROR row without sinking the run.

use eventracer::EventRacerConfig;
use sierra_cli::experiments::{run_fdroid, run_twenty, table3, table5};
use sierra_core::{run_jobs, SierraConfig};

#[test]
fn parallel_and_serial_sweeps_render_identical_tables() {
    let cfg = SierraConfig::builder().compare_without_as(false).build();
    let er = EventRacerConfig {
        runs: 4,
        ..Default::default()
    };
    let serial = run_twenty(cfg, &er, 1);
    let parallel = run_twenty(cfg, &er, 8);

    // Table 3 carries only analysis results — byte-identical.
    assert_eq!(table3(&serial), table3(&parallel));
    // Table 4's wall-clock columns differ run to run; its work counters
    // must not.
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(s.name, p.name, "input order is preserved");
        assert_eq!(s.pa_worklist_iters, p.pa_worklist_iters, "{}", s.name);
        assert_eq!(s.cg_edges, p.cg_edges, "{}", s.name);
        assert_eq!(s.shbg_rule_apps, p.shbg_rule_apps, "{}", s.name);
        assert_eq!(s.refuter_paths, p.refuter_paths, "{}", s.name);
    }
}

#[test]
fn fdroid_slice_is_schedule_independent() {
    let cfg = SierraConfig::builder().compare_without_as(false).build();
    let serial = run_fdroid(8, cfg, 1);
    let parallel = run_fdroid(8, cfg, 4);
    let strip_timings = |rows: &[sierra_cli::experiments::AppRow]| {
        let table = table5(rows);
        table
            .lines()
            .filter(|l| !l.starts_with("Efficiency medians"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(strip_timings(&serial), strip_timings(&parallel));
}

#[test]
fn race_reports_are_deterministically_ordered() {
    // Same app, different refutation parallelism: the rendered result —
    // including the numbered race list any triage annotations ride on —
    // must be byte-identical, and the list must follow the content-based
    // rank order rather than discovery order.
    let render = |refute_jobs: usize| {
        let cfg = SierraConfig::builder().refute_jobs(refute_jobs).build();
        let (app, _truth) = corpus::twenty::build_app(corpus::TWENTY[0]);
        sierra_core::Sierra::with_config(cfg).analyze_app(app)
    };
    let serial = render(1);
    let parallel = render(4);
    // Drop the lines that legitimately vary with scheduling: wall clock
    // ("stages:" and the triage stage's ms figure) and the refuter's
    // worker count. The harm annotations on the race lines themselves
    // remain under comparison.
    let stable = |r: &sierra_core::SierraResult| {
        format!("{r}")
            .lines()
            .filter(|l| {
                !l.starts_with("stages:")
                    && !l.starts_with("refuter:")
                    && !l.starts_with("histories:")
                    && !l.starts_with("triage:")
            })
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(
        stable(&serial),
        stable(&parallel),
        "race reports must not depend on refutation scheduling"
    );
    let keys: Vec<_> = serial.races.iter().map(|r| r.rank_key()).collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted, "races must be emitted in rank order");
}

#[test]
fn a_poisoned_app_becomes_an_error_row() {
    let items = vec![
        ("good".to_owned(), 1usize),
        ("poisoned".to_owned(), 2),
        ("also good".to_owned(), 3),
    ];
    let results = run_jobs(4, items, |name, n| {
        if name == "poisoned" {
            panic!("simulated analysis crash");
        }
        n * 10
    });
    assert_eq!(results[0], Ok(10));
    assert_eq!(results[2], Ok(30));
    let err = results[1].as_ref().expect_err("poisoned app fails");
    assert_eq!(err.item, "poisoned");
    assert!(err.message.contains("simulated analysis crash"));
}
