//! End-to-end `sierra serve` protocol tests against the real binary:
//! warm re-analysis must stream a byte-identical report (timings aside)
//! while the `done` counters prove the store was actually reused.

use sierra_core::Json;
use std::io::Write as _;
use std::process::{Command, Stdio};

const FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../fixtures/fig2_inter_component.sierra"
);

/// Runs `sierra-cli serve` with the given extra flags, feeds it `input`,
/// and returns every output line parsed as JSON.
fn run_serve(extra_flags: &[&str], input: &str) -> Vec<Json> {
    let mut child = Command::new(env!("CARGO_BIN_EXE_sierra-cli"))
        .arg("serve")
        .args(["--jobs", "1"])
        .args(extra_flags)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("serve starts");
    child
        .stdin
        .take()
        .expect("piped stdin")
        .write_all(input.as_bytes())
        .expect("request written");
    let output = child.wait_with_output().expect("serve exits");
    assert!(output.status.success(), "serve exits cleanly");
    String::from_utf8(output.stdout)
        .expect("utf-8 output")
        .lines()
        .map(|l| Json::parse(l).unwrap_or_else(|e| panic!("bad output line {l:?}: {e}")))
        .collect()
}

fn analyze_line(id: usize) -> String {
    format!(
        "{{\"id\":{id},\"op\":\"analyze\",\"path\":{}}}",
        Json::Str(FIXTURE.to_owned()).render()
    )
}

fn event<'a>(events: &'a [Json], id: u64, kind: &str) -> &'a Json {
    events
        .iter()
        .find(|e| {
            e.get("id").and_then(Json::as_u64) == Some(id)
                && e.get("event").and_then(Json::as_str) == Some(kind)
        })
        .unwrap_or_else(|| panic!("no {kind} event for id {id}: {events:?}"))
}

/// The report payload with the run-dependent groups removed: wall clock
/// (`timings_ms`) and store-reuse telemetry (`link`) describe the run,
/// not the analysis result.
fn stable_report(e: &Json) -> String {
    let mut report = e.get("report").expect("report payload").clone();
    if let Json::Obj(members) = &mut report {
        members.retain(|(k, _)| k != "timings_ms" && k != "link");
    }
    report.render()
}

#[test]
fn serve_answers_two_requests_with_identical_reports_and_warm_reuse() {
    let input = format!(
        "{}\n{}\n{{\"op\":\"shutdown\"}}\n",
        analyze_line(1),
        analyze_line(2)
    );
    let events = run_serve(&[], &input);

    assert_eq!(
        stable_report(event(&events, 1, "report")),
        stable_report(event(&events, 2, "report")),
        "warm report must be byte-identical to the cold one"
    );

    let cold = event(&events, 1, "done");
    let warm = event(&events, 2, "done");
    assert_eq!(cold.get("summaries_reused").and_then(Json::as_u64), Some(0));
    let recomputed = cold
        .get("summaries_recomputed")
        .and_then(Json::as_u64)
        .expect("cold run fills the store");
    assert!(recomputed > 0);
    assert!(
        warm.get("summaries_reused").and_then(Json::as_u64) > Some(0),
        "second request must reuse summaries: {warm:?}"
    );
    assert_eq!(
        warm.get("summaries_recomputed").and_then(Json::as_u64),
        Some(0)
    );
    assert_eq!(
        warm.get("analysis_reused").and_then(Json::as_bool),
        Some(true)
    );
}

#[test]
fn cache_dir_persists_summaries_across_server_restarts() {
    let dir = std::env::temp_dir().join(format!("sierra-serve-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let flags = ["--cache-dir", dir.to_str().expect("utf-8 temp path")];
    let input = format!("{}\n{{\"op\":\"shutdown\"}}\n", analyze_line(1));

    let first = run_serve(&flags, &input);
    let second = run_serve(&flags, &input);

    let cold = event(&first, 1, "done");
    let warm = event(&second, 1, "done");
    let recomputed = cold
        .get("summaries_recomputed")
        .and_then(Json::as_u64)
        .expect("cold run fills the disk store");
    assert!(recomputed > 0);
    assert_eq!(
        warm.get("summaries_reused").and_then(Json::as_u64),
        Some(recomputed),
        "a fresh server process must reload the disk store"
    );
    assert_eq!(
        warm.get("summaries_recomputed").and_then(Json::as_u64),
        Some(0)
    );
    // Reuse must not change the result.
    assert_eq!(
        stable_report(event(&first, 1, "report")),
        stable_report(event(&second, 1, "report"))
    );

    let _ = std::fs::remove_dir_all(&dir);
}
