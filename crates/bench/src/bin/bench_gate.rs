//! Bench regression gate: compares the work counters of a fresh
//! `BENCH_table4.json` (written by the `table4_efficiency` bench) against
//! the checked-in `BENCH_baseline.json` and exits nonzero when a gated
//! counter drifts outside the tolerance band.
//!
//! Only deterministic *work counters* are gated — worklist iterations,
//! propagations, rule applications, prune tallies, and the cycle-collapse
//! ablation deltas. Wall-clock keys (`*_us`, `stage_mean_us`) are never
//! compared: they depend on the host and would make the gate flaky. On
//! top of the per-counter band the gate checks the structural
//! invariants the pipeline exists to provide: collapse must reduce both
//! worklist iterations and propagations on the cycle fixture, and the
//! harm classifier's crash precision must stay at or above the 90%
//! floor on the labelled corpus.
//!
//! The exceptions to the no-wall-clock rule are the **latency SLO**
//! band over the `corpus_throughput` group — p99 per-app latency and
//! peak RSS may regress by at most 10% against the baseline
//! (improvements always pass — the check is one-sided); the SLO gates
//! only fire when the baseline records those keys — and the
//! **artifact-reuse payoff**: a warm process over a populated cache
//! directory must finish in under half the cold wall-time of the same
//! run (no baseline involved). `BENCH_GATE_SLO=0` disables both for
//! noisy or throttled hosts. The artifact group's structural
//! invariants (zero warm solver iterations, at least one shared
//! framework summary) are absolute and always enforced.
//!
//! The soundness ablation (`--bench soundness_ablation`) contributes a
//! second current file, `BENCH_soundness.json`, merged from the
//! directory of the current run when present. Its recall keys are
//! banded like any counter, and its ladder invariants are absolute:
//! recall monotone over `ignore → resolve → havoc`, `resolve`/`havoc`
//! at the 100% floor on the planted corpus, zero planted races lost
//! under `havoc`, zero `ignore ⊆ resolve ⊆ havoc` edge-subset
//! violations.
//!
//! When an intentional change shifts a counter past the band, rerun
//! `cargo bench -p sierra-bench --bench table4_efficiency` (and
//! `--bench soundness_ablation`) and refresh the gated keys in
//! `crates/bench/BENCH_baseline.json` in the same commit, so the diff
//! documents the new cost.
//!
//! Usage: `bench_gate [current.json] [baseline.json]` (defaults to the
//! crate-relative paths used by CI).

use std::process::ExitCode;

/// Relative drift allowed per counter. The counters are deterministic on
/// a given commit, so the band only absorbs drift from intentional code
/// changes small enough not to matter (e.g. one extra constraint node);
/// anything larger must come with a baseline refresh.
const TOLERANCE: f64 = 0.10;

/// Counter keys gated against the baseline. Quoted-key extraction is
/// exact, so `worklist_iterations` does not match
/// `worklist_iterations_collapse_on`.
const GATED: &[&str] = &[
    // counters
    "worklist_iterations",
    "propagations",
    "cg_edges",
    "pts_set_bytes",
    "rule_applications",
    "fixpoint_rounds",
    "closure_sccs",
    "refuter_paths",
    "refuter_queries",
    // prefilter
    "stress_candidates",
    "pruned_pairs",
    "pruned_escape",
    "pruned_guarded",
    "pruned_constprop",
    "infeasible_edges",
    // pointer ablation
    "collapsed_sccs",
    "collapsed_nodes",
    "worklist_iterations_collapse_on",
    "worklist_iterations_collapse_off",
    "propagations_collapse_on",
    "propagations_collapse_off",
    // triage ablation (corpus-wide harm classifier counters)
    "triage_classified",
    "triage_null_deref",
    "triage_use_before_init",
    "triage_value_inconsistency",
    "triage_likely_benign",
    "triage_dataflow_iterations",
    // histories ablation (protocol-fixture counters; deterministic)
    "hist_components",
    "hist_pairs_checked",
    "hist_product_edges",
    "hist_discharged_unregistered",
    "hist_discharged_destroy",
    "hist_discharged_pause",
    "hist_dead_callbacks",
    "hist_infeasible_exported",
    // summary reuse (edit-pair fixture; warm run over a primed store)
    "cold_pointer_iterations",
    "warm_pointer_iterations",
    "summaries_reused",
    "summaries_recomputed",
    // corpus throughput (shared-arena occupancy is deterministic;
    // scratch_reused is scheduling-dependent and only checked > 0)
    "arena_symbols",
    "arena_bytes",
    // soundness ablation (opaque-call policy audit; deterministic)
    "soundness_recall_ignore_pct",
    "soundness_unresolved_ignore",
    "soundness_refl_sites_ignore",
    "soundness_intent_sites_ignore",
];

/// Latency-SLO keys from the `corpus_throughput` group: gated
/// one-sided (only regressions beyond the band fail), and only when the
/// baseline records them. `BENCH_GATE_SLO=0` disables the check.
const SLO_GATED: &[&str] = &["corpus_p99_latency_us", "corpus_peak_rss_kb"];

/// Crash-capable precision the harm classifier must hold on the labelled
/// corpus, in percent. A triage stage that cries "crash" on benign races
/// is worse than no triage at all, so this floor is absolute rather than
/// baseline-relative.
const CRASH_PRECISION_FLOOR_PCT: f64 = 90.0;

/// Planted-race recall the `resolve` and `havoc` opaque-call policies
/// must hold on the soundness-audit corpus, in percent. The corpus
/// plants races reachable only through reflective and intent-dispatch
/// edges, so anything under 100% means a resolution path broke.
const SOUNDNESS_RECALL_FLOOR_PCT: f64 = 100.0;

/// Extracts the numeric value of `"key": <number>` from `json`. No serde
/// in-tree, and the bench JSON is flat and machine-written, so a quoted
/// exact-key scan is sufficient and keeps the gate dependency-free.
fn counter(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)?;
    let rest = json[at + needle.len()..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn within_band(current: f64, baseline: f64) -> bool {
    (current - baseline).abs() <= TOLERANCE * baseline.abs()
}

fn run(current: &str, baseline: &str, slo_enabled: bool) -> Result<(), Vec<String>> {
    let mut violations = Vec::new();
    for key in GATED {
        let base = counter(baseline, key);
        let cur = counter(current, key);
        match (base, cur) {
            (Some(b), Some(c)) => {
                if !within_band(c, b) {
                    violations.push(format!(
                        "{key}: {c} is outside ±{:.0}% of baseline {b}",
                        TOLERANCE * 100.0
                    ));
                }
            }
            (Some(_), None) => violations.push(format!("{key}: missing from current run")),
            (None, Some(_)) => violations.push(format!("{key}: missing from baseline")),
            // Absent from both: nothing to compare (the bench does not
            // emit this counter), so the gate has no opinion.
            (None, None) => {}
        }
    }
    // Structural invariants of the cycle-collapse ablation, independent
    // of any baseline value.
    let pairs = [
        (
            "worklist_iterations_collapse_on",
            "worklist_iterations_collapse_off",
        ),
        ("propagations_collapse_on", "propagations_collapse_off"),
    ];
    for (on_key, off_key) in pairs {
        if let (Some(on), Some(off)) = (counter(current, on_key), counter(current, off_key)) {
            if on >= off {
                violations.push(format!(
                    "{on_key} ({on}) must be below {off_key} ({off}): cycle collapse stopped paying for itself"
                ));
            }
        }
    }
    if let Some(sccs) = counter(current, "collapsed_sccs") {
        if sccs < 1.0 {
            violations.push("collapsed_sccs: cycle fixture no longer collapses anything".into());
        }
    }
    if let Some(precision) = counter(current, "triage_crash_precision_pct") {
        if precision < CRASH_PRECISION_FLOOR_PCT {
            violations.push(format!(
                "triage_crash_precision_pct: {precision} is below the {CRASH_PRECISION_FLOOR_PCT}% floor on crash-capable labels"
            ));
        }
    }
    // Structural invariants of the histories ablation: on the protocol
    // fixtures the stage must discharge every planted false positive and
    // keep every true race — both tallies are absolute zeros, not
    // baseline-relative bands.
    for (key, what) in [
        ("hist_corpus_missed_races", "dropped a true race"),
        ("hist_corpus_surviving_fps", "left a planted FP standing"),
    ] {
        if let Some(n) = counter(current, key) {
            if n > 0.0 {
                violations.push(format!(
                    "{key}: {n} — the histories stage {what} on the protocol fixtures"
                ));
            }
        }
    }
    // Structural invariants of the soundness ablation, current-run only:
    // recall must be monotone up the policy ladder, the sound end of the
    // ladder must hold the 100% floor on the planted corpus, climbing to
    // havoc must lose nothing, and the projected call graph must satisfy
    // ignore ⊆ resolve ⊆ havoc on every app.
    let recall = |p: &str| counter(current, &format!("soundness_recall_{p}_pct"));
    if let (Some(ig), Some(re), Some(ha)) = (recall("ignore"), recall("resolve"), recall("havoc")) {
        if !(ig <= re && re <= ha) {
            violations.push(format!(
                "soundness recall not monotone: ignore {ig} / resolve {re} / havoc {ha}"
            ));
        }
        for (policy, pct) in [("resolve", re), ("havoc", ha)] {
            if pct < SOUNDNESS_RECALL_FLOOR_PCT {
                violations.push(format!(
                    "soundness_recall_{policy}_pct: {pct} is below the \
                     {SOUNDNESS_RECALL_FLOOR_PCT}% floor on the planted corpus"
                ));
            }
        }
    }
    if let Some(lost) = counter(current, "soundness_truth_lost_havoc") {
        if lost > 0.0 {
            violations.push(format!(
                "soundness_truth_lost_havoc: {lost} planted race(s) lost under the most \
                 conservative policy"
            ));
        }
    }
    if let Some(bad) = counter(current, "edge_subset_violations") {
        if bad > 0.0 {
            violations.push(format!(
                "edge_subset_violations: {bad} app(s) break ignore ⊆ resolve ⊆ havoc on the \
                 projected call graph"
            ));
        }
    }
    // Structural invariants of the summary-reuse group: a warm run over
    // a primed store must actually reuse summaries and must spend under
    // half the cold run's solver iterations, independent of baseline.
    if let (Some(cold), Some(warm)) = (
        counter(current, "cold_pointer_iterations"),
        counter(current, "warm_pointer_iterations"),
    ) {
        if warm >= 0.5 * cold {
            violations.push(format!(
                "warm_pointer_iterations ({warm}) must be below half of cold_pointer_iterations ({cold}): the summary store stopped paying for itself"
            ));
        }
    }
    if let Some(reused) = counter(current, "summaries_reused") {
        if reused < 1.0 {
            violations.push("summaries_reused: warm run reused nothing from the store".into());
        }
    }
    // Corpus-throughput invariant: a multi-app run must reuse pooled
    // solver scratch (allocation churn crept back in otherwise).
    if let Some(reused) = counter(current, "scratch_reused") {
        if reused < 1.0 {
            violations.push("scratch_reused: corpus run reused no pooled solver scratch".into());
        }
    }
    // Structural invariants of the artifact-reuse group, current-run
    // only (no baseline needed): a warm process over a populated cache
    // directory must skip the solver entirely, and a shared-store
    // corpus pass must serve at least one framework summary from the
    // shared layer.
    if let Some(iters) = counter(current, "artifact_warm_pointer_iterations") {
        if iters > 0.0 {
            violations.push(format!(
                "artifact_warm_pointer_iterations: {iters} — a warm process must reuse the \
                 persisted points-to artifact instead of re-solving"
            ));
        }
    }
    if let Some(shared) = counter(current, "summaries_shared") {
        if shared < 1.0 {
            violations.push(
                "summaries_shared: the shared-store corpus pass served no framework summaries"
                    .into(),
            );
        }
    }
    // The warm-process payoff is wall-clock, so like the latency SLO it
    // honors BENCH_GATE_SLO=0 on noisy hosts; unlike the SLO it needs
    // no baseline — cold and warm come from the same run.
    if slo_enabled {
        if let (Some(cold), Some(warm)) = (
            counter(current, "artifact_cold_us"),
            counter(current, "artifact_warm_process_us"),
        ) {
            if warm >= 0.5 * cold {
                violations.push(format!(
                    "artifact_warm_process_us ({warm}) must be below half of artifact_cold_us \
                     ({cold}): the artifact cache stopped paying for itself \
                     (set BENCH_GATE_SLO=0 to skip on noisy hosts)"
                ));
            }
        }
    }
    // Latency SLO: one-sided band on p99 latency and peak RSS, active
    // only when the baseline records the keys.
    if slo_enabled {
        for key in SLO_GATED {
            match (counter(baseline, key), counter(current, key)) {
                (Some(b), Some(c)) => {
                    if c > b * (1.0 + TOLERANCE) {
                        violations.push(format!(
                            "{key}: {c} regresses more than {:.0}% over baseline {b} (SLO; set BENCH_GATE_SLO=0 to skip on noisy hosts)",
                            TOLERANCE * 100.0
                        ));
                    }
                }
                (Some(_), None) => violations.push(format!("{key}: missing from current run")),
                // No baseline SLO recorded: the gate has no opinion.
                (None, _) => {}
            }
        }
    }
    if violations.is_empty() {
        Ok(())
    } else {
        Err(violations)
    }
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let current_path = args
        .next()
        .unwrap_or_else(|| concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_table4.json").to_owned());
    let baseline_path = args
        .next()
        .unwrap_or_else(|| concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_baseline.json").to_owned());
    let read = |p: &str| match std::fs::read_to_string(p) {
        Ok(s) => Some(s),
        Err(e) => {
            eprintln!("bench_gate: cannot read {p}: {e}");
            None
        }
    };
    let (Some(mut current), Some(baseline)) = (read(&current_path), read(&baseline_path)) else {
        return ExitCode::FAILURE;
    };
    // The soundness ablation writes its counters to a sibling file
    // (`BENCH_soundness.json`, from `--bench soundness_ablation`); when
    // present it is concatenated into the current run so one gate pass
    // covers both benches. The quoted-key scan does not require the
    // combined text to be a single JSON document.
    let soundness_path = std::path::Path::new(&current_path)
        .parent()
        .map(|d| d.join("BENCH_soundness.json"));
    if let Some(p) = soundness_path {
        if let Ok(s) = std::fs::read_to_string(&p) {
            current.push('\n');
            current.push_str(&s);
            println!("bench_gate: merged {}", p.display());
        }
    }
    let slo_enabled = std::env::var("BENCH_GATE_SLO").map_or(true, |v| v != "0");
    match run(&current, &baseline, slo_enabled) {
        Ok(()) => {
            println!(
                "bench_gate: {} counters within ±{:.0}% of baseline, invariants hold",
                GATED.len(),
                TOLERANCE * 100.0
            );
            ExitCode::SUCCESS
        }
        Err(violations) => {
            eprintln!("bench_gate: {} violation(s):", violations.len());
            for v in &violations {
                eprintln!("  {v}");
            }
            eprintln!(
                "if intentional, refresh crates/bench/BENCH_baseline.json from a fresh bench run"
            );
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: &str = r#"{
      "counters": { "worklist_iterations": 100, "propagations": 200 },
      "pointer_ablation": {
        "collapsed_sccs": 4,
        "worklist_iterations_collapse_on": 10,
        "worklist_iterations_collapse_off": 40,
        "propagations_collapse_on": 50,
        "propagations_collapse_off": 90
      },
      "histories_ablation": {
        "hist_pairs_checked": 6,
        "hist_discharged_destroy": 1,
        "hist_corpus_missed_races": 0,
        "hist_corpus_surviving_fps": 0
      },
      "summary_reuse": {
        "cold_pointer_iterations": 30,
        "warm_pointer_iterations": 0,
        "summaries_reused": 6,
        "summaries_recomputed": 1
      },
      "artifact_reuse": {
        "artifact_cold_us": 5000.0,
        "artifact_warm_process_us": 900.0,
        "artifact_warm_pointer_iterations": 0,
        "artifact_warm_summaries_reused": 6,
        "summaries_shared": 12
      },
      "corpus_throughput": {
        "corpus_p99_latency_us": 1000.0,
        "corpus_peak_rss_kb": 50000,
        "scratch_reused": 19
      }
    }"#;

    #[test]
    fn quoted_key_extraction_is_exact() {
        assert_eq!(counter(BASE, "worklist_iterations"), Some(100.0));
        assert_eq!(counter(BASE, "worklist_iterations_collapse_on"), Some(10.0));
        assert_eq!(counter(BASE, "propagations"), Some(200.0));
        assert_eq!(counter(BASE, "nonexistent"), None);
    }

    #[test]
    fn identical_runs_pass() {
        assert!(run(BASE, BASE, true).is_ok());
    }

    #[test]
    fn drift_beyond_band_fails() {
        let drifted = BASE.replace("\"propagations\": 200", "\"propagations\": 260");
        let err = run(&drifted, BASE, true).unwrap_err();
        assert!(
            err.iter().any(|v| v.starts_with("propagations:")),
            "{err:?}"
        );
    }

    #[test]
    fn drift_within_band_passes() {
        let drifted = BASE.replace("\"propagations\": 200", "\"propagations\": 210");
        assert!(run(&drifted, BASE, true).is_ok());
    }

    #[test]
    fn collapse_invariants_are_enforced() {
        let broken = BASE.replace(
            "\"worklist_iterations_collapse_on\": 10",
            "\"worklist_iterations_collapse_on\": 40",
        );
        let err = run(&broken, BASE, true).unwrap_err();
        assert!(err.iter().any(|v| v.contains("stopped paying")), "{err:?}");
    }

    #[test]
    fn crash_precision_floor_is_enforced() {
        let with_precision = |pct: &str| {
            BASE.replace(
                "\"collapsed_sccs\": 4,",
                &format!("\"collapsed_sccs\": 4, \"triage_crash_precision_pct\": {pct},"),
            )
        };
        let good = with_precision("92.5");
        assert!(run(&good, BASE, true).is_ok());
        let bad = with_precision("88.0");
        let err = run(&bad, BASE, true).unwrap_err();
        assert!(
            err.iter().any(|v| v.contains("below the 90% floor")),
            "{err:?}"
        );
    }

    #[test]
    fn summary_reuse_invariants_are_enforced() {
        // Warm solver work creeping past half of cold is a violation
        // even when it stays within the per-counter drift band.
        let lazy = BASE.replace(
            "\"warm_pointer_iterations\": 0",
            "\"warm_pointer_iterations\": 15",
        );
        let err = run(&lazy, &lazy, true).unwrap_err();
        assert!(
            err.iter().any(|v| v.contains("stopped paying for itself")),
            "{err:?}"
        );

        let cold_store = BASE.replace("\"summaries_reused\": 6", "\"summaries_reused\": 0");
        let err = run(&cold_store, &cold_store, true).unwrap_err();
        assert!(err.iter().any(|v| v.contains("reused nothing")), "{err:?}");
    }

    #[test]
    fn histories_soundness_zeros_are_enforced() {
        // A nonzero tally fails even against a matching baseline: the
        // zeros are absolute, not drift-banded.
        let leaky = BASE.replace(
            "\"hist_corpus_missed_races\": 0",
            "\"hist_corpus_missed_races\": 1",
        );
        let err = run(&leaky, &leaky, true).unwrap_err();
        assert!(
            err.iter().any(|v| v.contains("dropped a true race")),
            "{err:?}"
        );

        let lax = BASE.replace(
            "\"hist_corpus_surviving_fps\": 0",
            "\"hist_corpus_surviving_fps\": 2",
        );
        let err = run(&lax, &lax, true).unwrap_err();
        assert!(
            err.iter().any(|v| v.contains("left a planted FP standing")),
            "{err:?}"
        );
    }

    #[test]
    fn missing_counter_fails() {
        let gutted = BASE.replace(", \"propagations\": 200", "");
        let err = run(&gutted, BASE, true).unwrap_err();
        assert!(
            err.iter().any(|v| v.contains("missing from current run")),
            "{err:?}"
        );
    }

    #[test]
    fn slo_regression_beyond_band_fails() {
        let slow = BASE.replace(
            "\"corpus_p99_latency_us\": 1000.0",
            "\"corpus_p99_latency_us\": 1200.0",
        );
        let err = run(&slow, BASE, true).unwrap_err();
        assert!(
            err.iter()
                .any(|v| v.starts_with("corpus_p99_latency_us:") && v.contains("SLO")),
            "{err:?}"
        );

        let fat = BASE.replace(
            "\"corpus_peak_rss_kb\": 50000",
            "\"corpus_peak_rss_kb\": 60000",
        );
        let err = run(&fat, BASE, true).unwrap_err();
        assert!(
            err.iter().any(|v| v.starts_with("corpus_peak_rss_kb:")),
            "{err:?}"
        );
    }

    #[test]
    fn slo_is_one_sided_and_tolerates_small_drift() {
        // Improvements pass no matter how large.
        let fast = BASE.replace(
            "\"corpus_p99_latency_us\": 1000.0",
            "\"corpus_p99_latency_us\": 100.0",
        );
        assert!(run(&fast, BASE, true).is_ok());
        // Regressions inside the band pass.
        let wobble = BASE.replace(
            "\"corpus_p99_latency_us\": 1000.0",
            "\"corpus_p99_latency_us\": 1090.0",
        );
        assert!(run(&wobble, BASE, true).is_ok());
    }

    #[test]
    fn slo_can_be_disabled_and_skips_bare_baselines() {
        // BENCH_GATE_SLO=0 waves through any regression.
        let slow = BASE.replace(
            "\"corpus_p99_latency_us\": 1000.0",
            "\"corpus_p99_latency_us\": 9000.0",
        );
        assert!(run(&slow, BASE, false).is_ok());
        // A baseline without SLO keys leaves the gate without an opinion
        // (the scratch_reused structural check still applies to current).
        let bare = BASE.replace("\"corpus_p99_latency_us\": 1000.0,", "");
        assert!(run(&slow, &bare, true).is_ok());
    }

    #[test]
    fn artifact_reuse_invariants_are_enforced() {
        // A warm process that re-runs the solver fails absolutely, even
        // against a matching baseline.
        let resolving = BASE.replace(
            "\"artifact_warm_pointer_iterations\": 0",
            "\"artifact_warm_pointer_iterations\": 30",
        );
        let err = run(&resolving, &resolving, true).unwrap_err();
        assert!(
            err.iter()
                .any(|v| v.contains("must reuse the persisted points-to artifact")),
            "{err:?}"
        );

        // A shared-store pass serving nothing fails.
        let unshared = BASE.replace("\"summaries_shared\": 12", "\"summaries_shared\": 0");
        let err = run(&unshared, &unshared, true).unwrap_err();
        assert!(
            err.iter().any(|v| v.contains("no framework summaries")),
            "{err:?}"
        );
    }

    #[test]
    fn artifact_warm_halving_is_enforced_and_slo_gated() {
        // Warm wall-time at or past half of cold fails while the SLO
        // checks are on…
        let slow_warm = BASE.replace(
            "\"artifact_warm_process_us\": 900.0",
            "\"artifact_warm_process_us\": 2600.0",
        );
        let err = run(&slow_warm, &slow_warm, true).unwrap_err();
        assert!(
            err.iter()
                .any(|v| v.contains("below half of artifact_cold_us")),
            "{err:?}"
        );
        // …and is waved through with BENCH_GATE_SLO=0 (noisy hosts).
        assert!(run(&slow_warm, &slow_warm, false).is_ok());
    }

    /// The soundness ablation's sibling file (`BENCH_soundness.json`),
    /// as concatenated into the current run by `main` — and into the
    /// baseline when the keys are refreshed.
    const SOUND: &str = r#"{
      "soundness_ablation": {
        "soundness_recall_ignore_pct": 98.6,
        "soundness_recall_resolve_pct": 100.0,
        "soundness_recall_havoc_pct": 100.0,
        "soundness_truth_lost_havoc": 0,
        "edge_subset_violations": 0,
        "soundness_unresolved_ignore": 990,
        "soundness_refl_sites_ignore": 3,
        "soundness_intent_sites_ignore": 2
      }
    }"#;

    fn with_soundness(base: &str) -> String {
        format!("{base}\n{SOUND}")
    }

    #[test]
    fn soundness_counters_are_banded_like_any_other() {
        let merged = with_soundness(BASE);
        assert!(run(&merged, &merged, true).is_ok());
        // The unresolved-site census drifts like any gated counter.
        let drifted = merged.replace(
            "\"soundness_unresolved_ignore\": 990",
            "\"soundness_unresolved_ignore\": 1200",
        );
        let err = run(&drifted, &merged, true).unwrap_err();
        assert!(
            err.iter()
                .any(|v| v.starts_with("soundness_unresolved_ignore:")),
            "{err:?}"
        );
        // A run missing the soundness file fails against a baseline
        // that records its keys — the ablation cannot silently vanish.
        let err = run(BASE, &merged, true).unwrap_err();
        assert!(
            err.iter()
                .any(|v| v.starts_with("soundness_recall_ignore_pct:")
                    && v.contains("missing from current run")),
            "{err:?}"
        );
    }

    #[test]
    fn soundness_ladder_invariants_are_enforced() {
        let merged = with_soundness(BASE);
        // Recall must not decrease up the ignore → resolve → havoc
        // ladder, even against a matching baseline.
        let inverted = merged
            .replace(
                "\"soundness_recall_ignore_pct\": 98.6",
                "\"soundness_recall_ignore_pct\": 100.0",
            )
            .replace(
                "\"soundness_recall_resolve_pct\": 100.0",
                "\"soundness_recall_resolve_pct\": 97.0",
            );
        let err = run(&inverted, &inverted, true).unwrap_err();
        assert!(err.iter().any(|v| v.contains("not monotone")), "{err:?}");

        // The sound end of the ladder holds the 100% floor.
        let slipped = merged.replace(
            "\"soundness_recall_havoc_pct\": 100.0",
            "\"soundness_recall_havoc_pct\": 99.3",
        );
        let err = run(&slipped, &slipped, true).unwrap_err();
        assert!(
            err.iter().any(|v| v.contains("below the 100% floor")),
            "{err:?}"
        );

        // Climbing to havoc must lose no planted race.
        let lossy = merged.replace(
            "\"soundness_truth_lost_havoc\": 0",
            "\"soundness_truth_lost_havoc\": 1",
        );
        let err = run(&lossy, &lossy, true).unwrap_err();
        assert!(
            err.iter().any(|v| v.contains("planted race(s) lost")),
            "{err:?}"
        );

        // The projected call graph must satisfy the subset law.
        let unsound = merged.replace(
            "\"edge_subset_violations\": 0",
            "\"edge_subset_violations\": 2",
        );
        let err = run(&unsound, &unsound, true).unwrap_err();
        assert!(
            err.iter().any(|v| v.contains("ignore ⊆ resolve ⊆ havoc")),
            "{err:?}"
        );
    }

    #[test]
    fn scratch_reuse_invariant_is_enforced() {
        let churning = BASE.replace("\"scratch_reused\": 19", "\"scratch_reused\": 0");
        let err = run(&churning, &churning, true).unwrap_err();
        assert!(
            err.iter().any(|v| v.contains("no pooled solver scratch")),
            "{err:?}"
        );
    }
}
