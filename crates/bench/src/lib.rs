//! # sierra-bench — benchmark support
//!
//! The Criterion benches in `benches/` regenerate the measurements behind
//! every table and figure of the paper's evaluation; this library hosts
//! shared fixtures.

use android_model::AndroidApp;
use corpus::GroundTruth;

/// A small, a medium, and a large Table 2 app (by synthesized size).
pub fn size_classes() -> Vec<(&'static str, AndroidApp, GroundTruth)> {
    ["VuDroid", "NPR News", "Astrid"]
        .into_iter()
        .map(|name| {
            let spec = corpus::TWENTY
                .iter()
                .find(|s| s.name == name)
                .expect("known app");
            let (app, truth) = corpus::twenty::build_app(*spec);
            (name, app, truth)
        })
        .collect()
}
