//! # sierra-bench — benchmark support
//!
//! The timing binaries in `benches/` regenerate the measurements behind
//! every table and figure of the paper's evaluation; this library hosts
//! shared fixtures and the std-only timing harness they use.

use android_model::AndroidApp;
use apir::{ConstValue, InvokeKind, Local, Operand, Type};
use corpus::GroundTruth;
use std::time::{Duration, Instant};

/// A small, a medium, and a large Table 2 app (by synthesized size).
pub fn size_classes() -> Vec<(&'static str, AndroidApp, GroundTruth)> {
    ["VuDroid", "NPR News", "Astrid"]
        .into_iter()
        .map(|name| {
            let spec = corpus::TWENTY
                .iter()
                .find(|s| s.name == name)
                .expect("known app");
            let (app, truth) = corpus::twenty::build_app(*spec);
            (name, app, truth)
        })
        .collect()
}

/// A refutation stress app: every candidate pair drives the backward
/// executor to its path budget, so refutation cost dominates and scales
/// with the worker count.
///
/// The shape is Figure 8's guard idiom with a twist that defeats both of
/// the refuter's early exits:
///
/// - A posted `Runner.run` guards its `fields` stores with `if (flag)`,
///   so the backward walk carries a `flag == true` heap constraint into
///   the earlier action.
/// - `onPause` writes the same fields, clears `flag`, and then runs
///   through `diamonds` nondeterministic diamonds before returning. The
///   backward walk from `onPause`'s exit forks `2^diamonds` paths, and
///   every one of them dies at `flag = false` — so the query can neither
///   witness early nor refute before exploring the whole frontier.
///
/// With `diamonds` ≥ 13 the frontier exceeds the default 5,000-path
/// budget, making each query cost exactly one budget's worth of work —
/// refuted-method caching never kicks in (budgeted queries are not
/// cached), so all `fields` queries stay equally expensive and
/// embarrassingly parallel.
///
/// The activity additionally carries two GUI handlers full of
/// statically-prunable pairs — constant-dead writes (`d0..d5`),
/// `inited`-guarded reads of `cfg0..cfg2` — which the pre-refutation
/// prefilter removes but the refuter alone cannot resolve cheaply. The
/// benchmark's write-write × posted-vs-lifecycle pair filter excludes
/// all of them, so the parallel-speedup measurement is unaffected.
pub fn refutation_stress_app(diamonds: usize, fields: usize) -> AndroidApp {
    let mut app = android_model::AndroidAppBuilder::new("RefuteStress");
    let fw = app.framework().clone();

    let mut cb = app.activity("Hot");
    cb.add_interface(fw.on_click_listener);
    cb.add_interface(fw.on_long_click_listener);
    let flag = cb.field("flag", Type::Bool);
    let slots: Vec<_> = (0..fields)
        .map(|i| cb.field(&format!("f{i}"), Type::Int))
        .collect();
    let dead_slots: Vec<_> = (0..6)
        .map(|i| cb.field(&format!("d{i}"), Type::Int))
        .collect();
    let cfg_slots: Vec<_> = (0..3)
        .map(|i| cb.field(&format!("cfg{i}"), Type::Int))
        .collect();
    let inited = cb.field("inited", Type::Bool);
    let activity = cb.build();

    let mut cb = app.subclass("Runner", fw.object);
    cb.add_interface(fw.runnable);
    let outer = cb.field("outer", Type::Ref(activity));
    let runner = cb.build();

    let mut mb = app.method(runner, "<init>");
    mb.set_param_count(2);
    let (this, o) = (mb.param(0), mb.param(1));
    mb.store(this, outer, Operand::Local(o));
    mb.ret(None);
    let runner_init = mb.finish();

    let mut mb = app.method(runner, "run");
    mb.set_param_count(1);
    let this = mb.param(0);
    let o = mb.fresh_local();
    let g = mb.fresh_local();
    mb.load(o, this, outer);
    mb.load(g, o, flag);
    let then_bb = mb.new_block();
    let else_bb = mb.new_block();
    mb.if_(Operand::Local(g), then_bb, else_bb);
    mb.switch_to(then_bb);
    for &f in &slots {
        mb.store(o, f, Operand::Const(ConstValue::Int(1)));
    }
    mb.ret(None);
    mb.switch_to(else_bb);
    mb.ret(None);
    mb.finish();

    let mut mb = app.method(activity, "onResume");
    mb.set_param_count(1);
    let this = mb.param(0);
    let r = mb.fresh_local();
    mb.new_(r, runner);
    mb.call(
        None,
        InvokeKind::Special,
        runner_init,
        Some(r),
        vec![Operand::Local(this)],
    );
    mb.call(
        None,
        InvokeKind::Virtual,
        fw.run_on_ui_thread,
        Some(this),
        vec![Operand::Local(r)],
    );
    mb.ret(None);
    mb.finish();

    let mut mb = app.method(activity, "onPause");
    mb.set_param_count(1);
    let this = mb.param(0);
    for &f in &slots {
        mb.store(this, f, Operand::Const(ConstValue::Int(2)));
    }
    mb.store(this, flag, Operand::Const(ConstValue::Bool(false)));
    let scratch = mb.fresh_local();
    for _ in 0..diamonds {
        let left = mb.new_block();
        let right = mb.new_block();
        let join = mb.new_block();
        mb.nondet(vec![left, right]);
        mb.switch_to(left);
        mb.const_(scratch, ConstValue::Int(1));
        mb.goto(join);
        mb.switch_to(right);
        mb.const_(scratch, ConstValue::Int(2));
        mb.goto(join);
        mb.switch_to(join);
    }
    mb.ret(None);
    mb.finish();

    // onCreate wires up the two GUI handlers hosting the prunable pairs.
    let mut mb = app.method(activity, "onCreate");
    mb.set_param_count(1);
    let this = mb.param(0);
    for (id, register) in [
        (1i64, fw.set_on_click_listener),
        (2, fw.set_on_long_click_listener),
    ] {
        let view = mb.fresh_local();
        mb.call(
            Some(view),
            InvokeKind::Virtual,
            fw.find_view_by_id,
            Some(this),
            vec![Operand::Const(ConstValue::Int(id))],
        );
        mb.call(
            None,
            InvokeKind::Virtual,
            register,
            Some(view),
            vec![Operand::Local(this)],
        );
    }
    mb.ret(None);
    mb.finish();

    // onClick: if (false) write d0..d5; if (inited) read cfg0..cfg2.
    let mut mb = app.method(activity, "onClick");
    mb.set_param_count(2);
    let this = mb.param(0);
    let c = mb.fresh_local();
    mb.const_(c, ConstValue::Bool(false));
    let b_dead = mb.new_block();
    let b_cont = mb.new_block();
    mb.if_(Operand::Local(c), b_dead, b_cont);
    mb.switch_to(b_dead);
    for &d in &dead_slots {
        mb.store(this, d, Operand::Const(ConstValue::Int(1)));
    }
    mb.goto(b_cont);
    mb.switch_to(b_cont);
    let g = mb.fresh_local();
    mb.load(g, this, inited);
    let b_cfg = mb.new_block();
    let b_exit = mb.new_block();
    mb.if_(Operand::Local(g), b_cfg, b_exit);
    mb.switch_to(b_cfg);
    for &f in &cfg_slots {
        let x = mb.fresh_local();
        mb.load(x, this, f);
    }
    mb.goto(b_exit);
    mb.switch_to(b_exit);
    mb.ret(None);
    mb.finish();

    // onLongClick: the live writes, ending with the unique `inited` store.
    let mut mb = app.method(activity, "onLongClick");
    mb.set_param_count(2);
    let this = mb.param(0);
    for &d in &dead_slots {
        mb.store(this, d, Operand::Const(ConstValue::Int(2)));
    }
    for &f in &cfg_slots {
        mb.store(this, f, Operand::Const(ConstValue::Int(3)));
    }
    mb.store(this, inited, Operand::Const(ConstValue::Bool(true)));
    mb.ret(None);
    mb.finish();

    app.finish().expect("valid stress app")
}

/// A pointer-analysis stress app whose constraint graph is a chain of
/// `cycles` copy cycles, each `cycle_len` locals long, with one fresh
/// allocation feeding every cycle.
///
/// Each cycle's entry local also receives the previous cycle's value, so
/// points-to sets grow along the chain: cycle `i` holds `i + 1` objects.
/// Without online cycle collapse every delta arriving at a cycle must
/// circulate through all `cycle_len` members (the worklist fires each
/// member once per incoming object); with collapse each cycle folds onto
/// a single representative after its first round. The fixture therefore
/// separates the two configurations by a wide, stable margin in
/// `worklist_iterations` and `propagations`, which is what the
/// `pointer_ablation` benchmark group measures and the bench gate pins.
///
/// All copy statements are emitted before any allocation: `add_edge`
/// eagerly unions the source's current points-to set into the target, so
/// alloc-then-move program order would saturate the whole chain during
/// constraint construction and leave nothing for the worklist (or the
/// collapse) to do. Building every edge over still-empty sets forces all
/// flow through worklist propagation, which is the code path under test.
pub fn pointer_cycle_stress_app(cycles: usize, cycle_len: usize) -> AndroidApp {
    assert!(cycle_len >= 2, "a cycle needs at least two locals");
    let mut app = android_model::AndroidAppBuilder::new("PtrCycleStress");
    let fw = app.framework().clone();
    let activity = app.activity("Main").build();
    let mut mb = app.method(activity, "onCreate");
    mb.set_param_count(1);
    let all: Vec<Vec<Local>> = (0..cycles)
        .map(|_| (0..cycle_len).map(|_| mb.fresh_local()).collect())
        .collect();
    let seeds: Vec<Local> = (0..cycles).map(|_| mb.fresh_local()).collect();
    let mut prev: Option<Local> = None;
    for (locals, &seed) in all.iter().zip(&seeds) {
        mb.move_(locals[0], seed);
        if let Some(p) = prev {
            // Chain the cycles so points-to sets accumulate downstream.
            mb.move_(locals[0], p);
        }
        for w in locals.windows(2) {
            mb.move_(w[1], w[0]);
        }
        mb.move_(locals[0], locals[cycle_len - 1]); // close the cycle
        prev = Some(locals[0]);
    }
    for &seed in &seeds {
        mb.new_(seed, fw.object);
    }
    mb.ret(None);
    mb.finish();
    app.finish().expect("valid cycle stress app")
}

/// Times `f` over `iters` iterations after one untimed warm-up run,
/// prints a `label  min/mean` line, and returns the mean per-iteration
/// duration. The result of each call is passed through
/// [`std::hint::black_box`] so the work is not optimized away.
pub fn time<T>(label: &str, iters: usize, mut f: impl FnMut() -> T) -> Duration {
    assert!(iters > 0, "at least one iteration");
    std::hint::black_box(f());
    let mut min = Duration::MAX;
    let mut total = Duration::ZERO;
    for _ in 0..iters {
        let start = Instant::now();
        std::hint::black_box(f());
        let elapsed = start.elapsed();
        total += elapsed;
        min = min.min(elapsed);
    }
    let mean = total / iters as u32;
    println!("{label:<46} min {min:>12.3?}  mean {mean:>12.3?}  ({iters} iters)");
    mean
}

/// Prints a section header for a group of [`time`] measurements.
pub fn group(name: &str) {
    println!("\n== {name} ==");
}

#[cfg(test)]
mod tests {
    use super::*;
    use pointer::Access;
    use sierra_core::{Sierra, SierraConfig};
    use std::collections::HashSet;

    fn pair_key(a: &Access, b: &Access) -> String {
        format!("{:?}@{:?} vs {:?}@{:?}", a.addr, a.action, b.addr, b.action)
    }

    /// Acceptance: on the figure apps plus the refutation stress app the
    /// prefilter removes at least 20% of candidate pairs, and the
    /// surviving reports equal the `--no-prefilter` run minus exactly
    /// the pruned pairs.
    #[test]
    fn prefilter_prunes_a_fifth_of_candidates_without_changing_verdicts() {
        // A small diamond count keeps refutation fast; the candidate set
        // and prune decisions are identical to the benchmark shape.
        let apps = vec![
            corpus::figures::intra_component().0,
            corpus::figures::inter_component().0,
            corpus::figures::open_sudoku_guard().0,
            refutation_stress_app(4, 8),
        ];
        let (mut total, mut pruned_total) = (0usize, 0usize);
        for app in apps {
            let with = Sierra::new().analyze_app(app.clone());
            let without = Sierra::with_config(SierraConfig::builder().no_prefilter(true).build())
                .analyze_app(app);
            total += with.racy_pairs_with_as;
            pruned_total += with.pruned.len();
            assert_eq!(with.racy_pairs_with_as, without.racy_pairs_with_as);
            assert!(without.pruned.is_empty());
            let pruned_keys: HashSet<String> =
                with.pruned.iter().map(|p| pair_key(&p.a, &p.b)).collect();
            let with_keys: Vec<String> = with.races.iter().map(|r| pair_key(&r.a, &r.b)).collect();
            let expected: Vec<String> = without
                .races
                .iter()
                .map(|r| pair_key(&r.a, &r.b))
                .filter(|k| !pruned_keys.contains(k))
                .collect();
            assert_eq!(with_keys, expected, "{}", with.app_name);
        }
        assert!(
            pruned_total * 5 >= total,
            "prefilter must prune ≥20% of candidates, got {pruned_total}/{total}"
        );
    }

    /// The stress app's prunable content lands on the intended rules:
    /// six constant-dead pairs, the `inited`-guarded cfg pairs, and the
    /// `flag`-guarded budget-exhausting pairs.
    #[test]
    fn stress_app_prune_counts_by_verdict() {
        let result = Sierra::new().analyze_app(refutation_stress_app(2, 8));
        let s = result.metrics.prefilter;
        assert_eq!(s.pruned_constprop, 6, "d0..d5 constant-dead pairs");
        assert!(
            s.pruned_guarded >= 3,
            "cfg0..cfg2 guarded pairs, got {}",
            s.pruned_guarded
        );
        assert!(s.infeasible_edges >= 1);
        assert_eq!(s.pruned_total(), result.pruned.len());
    }
}
