//! # sierra-bench — benchmark support
//!
//! The timing binaries in `benches/` regenerate the measurements behind
//! every table and figure of the paper's evaluation; this library hosts
//! shared fixtures and the std-only timing harness they use.

use android_model::AndroidApp;
use apir::{ConstValue, InvokeKind, Operand, Type};
use corpus::GroundTruth;
use std::time::{Duration, Instant};

/// A small, a medium, and a large Table 2 app (by synthesized size).
pub fn size_classes() -> Vec<(&'static str, AndroidApp, GroundTruth)> {
    ["VuDroid", "NPR News", "Astrid"]
        .into_iter()
        .map(|name| {
            let spec = corpus::TWENTY
                .iter()
                .find(|s| s.name == name)
                .expect("known app");
            let (app, truth) = corpus::twenty::build_app(*spec);
            (name, app, truth)
        })
        .collect()
}

/// A refutation stress app: every candidate pair drives the backward
/// executor to its path budget, so refutation cost dominates and scales
/// with the worker count.
///
/// The shape is Figure 8's guard idiom with a twist that defeats both of
/// the refuter's early exits:
///
/// - A posted `Runner.run` guards its `fields` stores with `if (flag)`,
///   so the backward walk carries a `flag == true` heap constraint into
///   the earlier action.
/// - `onPause` writes the same fields, clears `flag`, and then runs
///   through `diamonds` nondeterministic diamonds before returning. The
///   backward walk from `onPause`'s exit forks `2^diamonds` paths, and
///   every one of them dies at `flag = false` — so the query can neither
///   witness early nor refute before exploring the whole frontier.
///
/// With `diamonds` ≥ 13 the frontier exceeds the default 5,000-path
/// budget, making each query cost exactly one budget's worth of work —
/// refuted-method caching never kicks in (budgeted queries are not
/// cached), so all `fields` queries stay equally expensive and
/// embarrassingly parallel.
pub fn refutation_stress_app(diamonds: usize, fields: usize) -> AndroidApp {
    let mut app = android_model::AndroidAppBuilder::new("RefuteStress");
    let fw = app.framework().clone();

    let mut cb = app.activity("Hot");
    let flag = cb.field("flag", Type::Bool);
    let slots: Vec<_> = (0..fields)
        .map(|i| cb.field(&format!("f{i}"), Type::Int))
        .collect();
    let activity = cb.build();

    let mut cb = app.subclass("Runner", fw.object);
    cb.add_interface(fw.runnable);
    let outer = cb.field("outer", Type::Ref(activity));
    let runner = cb.build();

    let mut mb = app.method(runner, "<init>");
    mb.set_param_count(2);
    let (this, o) = (mb.param(0), mb.param(1));
    mb.store(this, outer, Operand::Local(o));
    mb.ret(None);
    let runner_init = mb.finish();

    let mut mb = app.method(runner, "run");
    mb.set_param_count(1);
    let this = mb.param(0);
    let o = mb.fresh_local();
    let g = mb.fresh_local();
    mb.load(o, this, outer);
    mb.load(g, o, flag);
    let then_bb = mb.new_block();
    let else_bb = mb.new_block();
    mb.if_(Operand::Local(g), then_bb, else_bb);
    mb.switch_to(then_bb);
    for &f in &slots {
        mb.store(o, f, Operand::Const(ConstValue::Int(1)));
    }
    mb.ret(None);
    mb.switch_to(else_bb);
    mb.ret(None);
    mb.finish();

    let mut mb = app.method(activity, "onResume");
    mb.set_param_count(1);
    let this = mb.param(0);
    let r = mb.fresh_local();
    mb.new_(r, runner);
    mb.call(
        None,
        InvokeKind::Special,
        runner_init,
        Some(r),
        vec![Operand::Local(this)],
    );
    mb.call(
        None,
        InvokeKind::Virtual,
        fw.run_on_ui_thread,
        Some(this),
        vec![Operand::Local(r)],
    );
    mb.ret(None);
    mb.finish();

    let mut mb = app.method(activity, "onPause");
    mb.set_param_count(1);
    let this = mb.param(0);
    for &f in &slots {
        mb.store(this, f, Operand::Const(ConstValue::Int(2)));
    }
    mb.store(this, flag, Operand::Const(ConstValue::Bool(false)));
    let scratch = mb.fresh_local();
    for _ in 0..diamonds {
        let left = mb.new_block();
        let right = mb.new_block();
        let join = mb.new_block();
        mb.nondet(vec![left, right]);
        mb.switch_to(left);
        mb.const_(scratch, ConstValue::Int(1));
        mb.goto(join);
        mb.switch_to(right);
        mb.const_(scratch, ConstValue::Int(2));
        mb.goto(join);
        mb.switch_to(join);
    }
    mb.ret(None);
    mb.finish();

    app.finish().expect("valid stress app")
}

/// Times `f` over `iters` iterations after one untimed warm-up run,
/// prints a `label  min/mean` line, and returns the mean per-iteration
/// duration. The result of each call is passed through
/// [`std::hint::black_box`] so the work is not optimized away.
pub fn time<T>(label: &str, iters: usize, mut f: impl FnMut() -> T) -> Duration {
    assert!(iters > 0, "at least one iteration");
    std::hint::black_box(f());
    let mut min = Duration::MAX;
    let mut total = Duration::ZERO;
    for _ in 0..iters {
        let start = Instant::now();
        std::hint::black_box(f());
        let elapsed = start.elapsed();
        total += elapsed;
        min = min.min(elapsed);
    }
    let mean = total / iters as u32;
    println!("{label:<46} min {min:>12.3?}  mean {mean:>12.3?}  ({iters} iters)");
    mean
}

/// Prints a section header for a group of [`time`] measurements.
pub fn group(name: &str) {
    println!("\n== {name} ==");
}
