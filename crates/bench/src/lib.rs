//! # sierra-bench — benchmark support
//!
//! The timing binaries in `benches/` regenerate the measurements behind
//! every table and figure of the paper's evaluation; this library hosts
//! shared fixtures and the std-only timing harness they use.

use android_model::AndroidApp;
use corpus::GroundTruth;
use std::time::{Duration, Instant};

/// A small, a medium, and a large Table 2 app (by synthesized size).
pub fn size_classes() -> Vec<(&'static str, AndroidApp, GroundTruth)> {
    ["VuDroid", "NPR News", "Astrid"]
        .into_iter()
        .map(|name| {
            let spec = corpus::TWENTY
                .iter()
                .find(|s| s.name == name)
                .expect("known app");
            let (app, truth) = corpus::twenty::build_app(*spec);
            (name, app, truth)
        })
        .collect()
}

/// Times `f` over `iters` iterations after one untimed warm-up run,
/// prints a `label  min/mean` line, and returns the mean per-iteration
/// duration. The result of each call is passed through
/// [`std::hint::black_box`] so the work is not optimized away.
pub fn time<T>(label: &str, iters: usize, mut f: impl FnMut() -> T) -> Duration {
    assert!(iters > 0, "at least one iteration");
    std::hint::black_box(f());
    let mut min = Duration::MAX;
    let mut total = Duration::ZERO;
    for _ in 0..iters {
        let start = Instant::now();
        std::hint::black_box(f());
        let elapsed = start.elapsed();
        total += elapsed;
        min = min.min(elapsed);
    }
    let mean = total / iters as u32;
    println!("{label:<46} min {min:>12.3?}  mean {mean:>12.3?}  ({iters} iters)");
    mean
}

/// Prints a section header for a group of [`time`] measurements.
pub fn group(name: &str) {
    println!("\n== {name} ==");
}
