//! Soundness-mode ablation: what each opaque-call policy buys.
//!
//! Runs the soundness-audit corpus (the twenty Table-2 apps plus the
//! `reflection_idioms` fixtures, whose planted races are invisible
//! unless reflection/intent edges are modeled) once per policy and
//! records, in `BENCH_soundness.json`:
//!
//! - per-policy planted-race recall (`soundness_recall_*_pct`) — the
//!   measurable-recall claim the gate pins: `resolve` and `havoc` must
//!   hold 100% on this corpus, and recall must be monotone up the
//!   `ignore → resolve → havoc` ladder;
//! - `soundness_truth_lost_havoc` — planted races the most conservative
//!   policy still misses (must be zero);
//! - `edge_subset_violations` — apps where the context-insensitive
//!   call-graph projection fails `ignore ⊆ resolve ⊆ havoc` (must be
//!   zero);
//! - the audit's unresolved-site census under `ignore`
//!   (`soundness_unresolved_ignore`, `soundness_refl_sites_ignore`,
//!   `soundness_intent_sites_ignore`) — deterministic counters the gate
//!   bands against the baseline.
//!
//! ```sh
//! cargo bench -p sierra-bench --bench soundness_ablation
//! ```

use android_model::AndroidApp;
use corpus::GroundTruth;
use sierra_bench::{group, time};
use sierra_core::json::{num, obj, Json};
use sierra_core::{OpaquePolicy, Sierra, SierraConfig, SierraResult};
use std::collections::BTreeSet;

/// The audit corpus: every Table-2 app plus the two policy fixtures.
fn audit_corpus() -> Vec<(String, AndroidApp, GroundTruth)> {
    let mut apps: Vec<(String, AndroidApp, GroundTruth)> = corpus::twenty::build_all()
        .into_iter()
        .map(|(spec, app, truth)| (spec.name.to_owned(), app, truth))
        .collect();
    let (app, truth) = corpus::reflection_idioms::reflection_idioms_app();
    apps.push(("ReflectionIdioms".to_owned(), app, truth));
    let (app, truth) = corpus::reflection_idioms::intent_idioms_app();
    apps.push(("IntentIdioms".to_owned(), app, truth));
    apps
}

/// Context-insensitive `(caller, site, callee)` projection of the call
/// graph (contexts are allocated in policy-dependent order).
fn edge_projection(result: &SierraResult) -> BTreeSet<(u32, u32, u32)> {
    let mut out = BTreeSet::new();
    for ((m, _, site), callees) in &result.analysis.cg_edges {
        for &(callee, _) in callees {
            out.insert((m.0, site.0, callee.0));
        }
    }
    out
}

/// One policy's corpus pass, reduced to the gated tallies.
#[derive(Default)]
struct PolicyTally {
    found: usize,
    missed: usize,
    unresolved: usize,
    refl: usize,
    intent: usize,
    edges: Vec<BTreeSet<(u32, u32, u32)>>,
}

impl PolicyTally {
    fn recall_pct(&self) -> f64 {
        if self.found + self.missed == 0 {
            100.0
        } else {
            100.0 * self.found as f64 / (self.found + self.missed) as f64
        }
    }
}

fn run_policy(apps: &[(String, AndroidApp, GroundTruth)], policy: OpaquePolicy) -> PolicyTally {
    let cfg = SierraConfig::builder().opaque_policy(policy).build();
    let mut tally = PolicyTally::default();
    for (_, app, truth) in apps {
        let result = Sierra::with_config(cfg).analyze_app(app.clone());
        let p = &result.harness.app.program;
        let groups: Vec<(String, String)> = result
            .races
            .iter()
            .map(|r| {
                let f = p.field(r.field);
                (p.class_name(f.class).to_owned(), p.name(f.name).to_owned())
            })
            .collect();
        let eval = truth.evaluate(groups.iter().map(|(c, f)| (c.as_str(), f.as_str())));
        tally.found += eval.true_races;
        tally.missed += eval.missed;
        let s = result.metrics.soundness;
        tally.unresolved += s.unresolved_sites;
        tally.refl += s.reflective_sites;
        tally.intent += s.intent_sites;
        tally.edges.push(edge_projection(&result));
    }
    tally
}

fn main() {
    let apps = audit_corpus();
    group("soundness_ablation");

    let mut tallies: Vec<(OpaquePolicy, PolicyTally)> = Vec::new();
    for policy in OpaquePolicy::ALL {
        let mut last = None;
        time(&format!("corpus/{policy}"), 3, || {
            let t = run_policy(&apps, policy);
            let out = (t.found, t.missed);
            last = Some(t);
            out
        });
        tallies.push((policy, last.expect("at least one timed run")));
    }

    let by = |p: OpaquePolicy| {
        &tallies
            .iter()
            .find(|(q, _)| *q == p)
            .expect("all policies ran")
            .1
    };
    let (ignore, resolve, havoc) = (
        by(OpaquePolicy::Ignore),
        by(OpaquePolicy::Resolve),
        by(OpaquePolicy::Havoc),
    );

    // `ignore ⊆ resolve ⊆ havoc` per app, on the projected edge sets.
    let mut edge_subset_violations = 0usize;
    for (i, (name, _, _)) in apps.iter().enumerate() {
        for (lo, hi, label) in [
            (&ignore.edges[i], &resolve.edges[i], "ignore ⊆ resolve"),
            (&resolve.edges[i], &havoc.edges[i], "resolve ⊆ havoc"),
        ] {
            if !lo.is_subset(hi) {
                edge_subset_violations += 1;
                println!("  VIOLATION {name}: {label} fails");
            }
        }
    }

    println!(
        "recall: ignore {:.1}% ({} found, {} missed) | resolve {:.1}% | havoc {:.1}% | {} subset violation(s)",
        ignore.recall_pct(),
        ignore.found,
        ignore.missed,
        resolve.recall_pct(),
        havoc.recall_pct(),
        edge_subset_violations,
    );

    let json = obj(vec![
        ("bench", Json::Str("soundness_ablation".to_owned())),
        ("apps", num(apps.len())),
        (
            "soundness_ablation",
            obj(vec![
                (
                    "soundness_recall_ignore_pct",
                    Json::Num(ignore.recall_pct()),
                ),
                (
                    "soundness_recall_resolve_pct",
                    Json::Num(resolve.recall_pct()),
                ),
                ("soundness_recall_havoc_pct", Json::Num(havoc.recall_pct())),
                ("soundness_found_ignore", num(ignore.found)),
                ("soundness_found_resolve", num(resolve.found)),
                ("soundness_found_havoc", num(havoc.found)),
                ("soundness_truth_lost_havoc", num(havoc.missed)),
                ("edge_subset_violations", num(edge_subset_violations)),
                ("soundness_unresolved_ignore", num(ignore.unresolved)),
                ("soundness_refl_sites_ignore", num(ignore.refl)),
                ("soundness_intent_sites_ignore", num(ignore.intent)),
                ("soundness_refl_sites_resolve", num(resolve.refl)),
                ("soundness_intent_sites_resolve", num(resolve.intent)),
            ]),
        ),
    ]);
    let mut rendered = json.render();
    rendered.push('\n');
    std::fs::write("BENCH_soundness.json", &rendered).expect("write BENCH_soundness.json");
    println!("wrote BENCH_soundness.json");
}
