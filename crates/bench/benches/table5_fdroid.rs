//! Table 5: the 174-app F-Droid dataset.
//!
//! Times synthesizing and analyzing a slice of the dataset (the full
//! 174-app sweep is the `sierra-cli table5` command; the bench keeps a
//! fixed 10-app slice so timings are comparable run to run), and compares
//! the engine's worker pool against a serial sweep.
//!
//! ```sh
//! cargo bench --bench table5_fdroid
//! ```

use sierra_bench::{group, time};
use sierra_core::{run_jobs, Sierra, SierraConfig};

fn main() {
    group("table5_fdroid");

    time("synthesize_10_apps", 10, || {
        corpus::fdroid::iter_apps()
            .take(10)
            .map(|(_, app, _)| app.size_stmts())
            .sum::<usize>()
    });

    let apps: Vec<_> = corpus::fdroid::iter_apps().take(10).collect();
    let cfg = SierraConfig::builder().compare_without_as(false).build();
    time("analyze_10_apps_serial", 5, || {
        apps.iter()
            .map(|(_, app, _)| {
                Sierra::with_config(cfg)
                    .analyze_app(app.clone())
                    .races
                    .len()
            })
            .sum::<usize>()
    });

    // The same sweep through the engine: jobs=1 must match the serial
    // numbers, jobs=0 (all cores) shows the pool's speedup.
    for jobs in [1usize, 0] {
        let label = if jobs == 0 {
            "analyze_10_apps_engine_all_cores"
        } else {
            "analyze_10_apps_engine_1_job"
        };
        time(label, 5, || {
            let items: Vec<(String, _)> = apps
                .iter()
                .map(|(idx, app, _)| (format!("fdroid-{idx}"), app.clone()))
                .collect();
            run_jobs(jobs, items, |_, app| {
                Sierra::with_config(cfg).analyze_app(app).races.len()
            })
            .into_iter()
            .map(|r| r.expect("no panics in the sweep"))
            .sum::<usize>()
        });
    }
}
