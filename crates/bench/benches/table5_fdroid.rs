//! Table 5: the 174-app F-Droid dataset.
//!
//! Benchmarks synthesizing and analyzing a slice of the dataset (the full
//! 174-app sweep is the `sierra-cli table5` command; the bench keeps a
//! fixed 10-app slice so timings are comparable run to run).

use criterion::{criterion_group, criterion_main, Criterion};
use sierra_core::{Sierra, SierraConfig};
use std::hint::black_box;

fn bench_fdroid(c: &mut Criterion) {
    let mut group = c.benchmark_group("table5_fdroid");
    group.sample_size(10);

    group.bench_function("synthesize_10_apps", |b| {
        b.iter(|| {
            corpus::fdroid::iter_apps().take(10).map(|(_, app, _)| app.size_stmts()).sum::<usize>()
        })
    });

    let apps: Vec<_> = corpus::fdroid::iter_apps().take(10).collect();
    let cfg = SierraConfig { compare_without_as: false, ..Default::default() };
    group.bench_function("analyze_10_apps", |b| {
        b.iter(|| {
            apps.iter()
                .map(|(_, app, _)| {
                    Sierra::with_config(cfg).analyze_app(black_box(app.clone())).races.len()
                })
                .sum::<usize>()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fdroid);
criterion_main!(benches);
