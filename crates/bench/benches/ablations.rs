//! Ablations of the design choices DESIGN.md calls out (§6.5).
//!
//! - **Context sensitivity**: racy-pair counts and analysis time across
//!   insensitive / k-cfa / k-obj / hybrid / action-sensitive abstractions
//!   (the paper's 5× reduction claim).
//! - **Refutation budget**: path budgets from starved to the paper's
//!   5,000-path default.
//! - **Refuted-node cache**: §5's memoization on versus off.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pointer::SelectorKind;
use sierra_core::{Sierra, SierraConfig};
use std::hint::black_box;
use symexec::RefuterConfig;

fn bench_context_ablation(c: &mut Criterion) {
    let (_, app, _) = sierra_bench::size_classes().remove(1); // NPR News
    let mut group = c.benchmark_group("ablation_contexts");
    group.sample_size(20);
    let selectors = [
        SelectorKind::Insensitive,
        SelectorKind::KCfa(1),
        SelectorKind::KObj(1),
        SelectorKind::Hybrid(1),
        SelectorKind::ActionSensitive(1),
        SelectorKind::ActionSensitive(2),
    ];
    for sel in selectors {
        group.bench_with_input(BenchmarkId::new("analysis", sel.name()), &sel, |b, &sel| {
            let harness = harness_gen::generate(app.clone());
            b.iter(|| pointer::analyze(black_box(&harness), sel).cg_edge_count())
        });
    }
    group.finish();
}

fn bench_refutation_budget(c: &mut Criterion) {
    let (_, app, _) = sierra_bench::size_classes().remove(1);
    let mut group = c.benchmark_group("ablation_budget");
    group.sample_size(15);
    for budget in [10usize, 100, 5_000] {
        let cfg = SierraConfig {
            refuter: RefuterConfig { max_paths: budget, ..Default::default() },
            compare_without_as: false,
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::new("max_paths", budget), &cfg, |b, &cfg| {
            b.iter(|| Sierra::with_config(cfg).analyze_app(app.clone()).races.len())
        });
    }
    group.finish();
}

fn bench_cache_ablation(c: &mut Criterion) {
    let (_, app, _) = sierra_bench::size_classes().remove(2); // Astrid (largest)
    let mut group = c.benchmark_group("ablation_cache");
    group.sample_size(10);
    for (label, use_cache) in [("cache_on", true), ("cache_off", false)] {
        let cfg = SierraConfig {
            refuter: RefuterConfig { use_cache, ..Default::default() },
            compare_without_as: false,
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::new("refutation", label), &cfg, |b, &cfg| {
            b.iter(|| Sierra::with_config(cfg).analyze_app(app.clone()).races.len())
        });
    }
    group.finish();
}

fn bench_index_sensitivity(c: &mut Criterion) {
    // The §6.5 future-work container model: compare indexed-container
    // analysis with per-slot fields vs the summarized field.
    let mut app = android_model::AndroidAppBuilder::new("IndexFixture");
    let mut truth = corpus::GroundTruth::new();
    corpus::Idiom::IndexedBuffer.plant(&mut app, "com.fix.Buffer", &mut truth);
    let app = app.finish().expect("fixture builds");
    let harness = harness_gen::generate(app);
    let mut group = c.benchmark_group("ablation_index_sensitivity");
    for (label, on) in [("index_sensitive", true), ("summarized", false)] {
        let opts = pointer::AnalysisOptions { index_sensitive: on };
        group.bench_with_input(BenchmarkId::new("analysis", label), &opts, |b, &opts| {
            b.iter(|| {
                pointer::analyze_opts(
                    black_box(&harness),
                    SelectorKind::ActionSensitive(1),
                    opts,
                )
                .cg_edge_count()
            })
        });
    }
    group.finish();
}

fn bench_schedule_exploration(c: &mut Criterion) {
    // Random vs systematic schedule exploration (the §6.4 "efficient ways
    // to explore schedules" discussion) under comparable budgets.
    let (app, _) = corpus::figures::inter_component();
    let mut group = c.benchmark_group("ablation_exploration");
    group.sample_size(20);
    group.bench_function("random_64_runs", |b| {
        b.iter(|| {
            eventracer::detect(
                black_box(&app),
                &eventracer::EventRacerConfig {
                    runs: 64,
                    steps_per_episode: 6,
                    activity_coverage: 1.0,
                    ..Default::default()
                },
            )
            .races
            .len()
        })
    });
    group.bench_function("systematic_64_runs", |b| {
        b.iter(|| {
            eventracer::detect_systematic(
                black_box(&app),
                &eventracer::SystematicConfig { max_runs: 64, ..Default::default() },
            )
            .races
            .len()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_context_ablation,
    bench_refutation_budget,
    bench_cache_ablation,
    bench_index_sensitivity,
    bench_schedule_exploration
);
criterion_main!(benches);
