//! Ablations of the design choices DESIGN.md calls out (§6.5).
//!
//! - **Context sensitivity**: racy-pair counts and analysis time across
//!   insensitive / k-cfa / k-obj / hybrid / action-sensitive abstractions
//!   (the paper's 5× reduction claim).
//! - **Refutation budget**: path budgets from starved to the paper's
//!   5,000-path default.
//! - **Refuted-node cache**: §5's memoization on versus off.
//!
//! ```sh
//! cargo bench --bench ablations
//! ```

use pointer::SelectorKind;
use sierra_bench::{group, time};
use sierra_core::{SessionBuilder, Sierra, SierraConfig};
use std::sync::Arc;
use symexec::RefuterConfig;

fn context_ablation() {
    let (_, app, _) = sierra_bench::size_classes().remove(1); // NPR News
    group("ablation_contexts");
    // The harness is generated once and shared between selector sessions —
    // context sensitivity only changes the pointer stage.
    let harness = Arc::new(harness_gen::generate(app));
    let selectors = [
        SelectorKind::Insensitive,
        SelectorKind::KCfa(1),
        SelectorKind::KObj(1),
        SelectorKind::Hybrid(1),
        SelectorKind::ActionSensitive(1),
        SelectorKind::ActionSensitive(2),
    ];
    for sel in selectors {
        let cfg = SierraConfig::builder()
            .selector(sel)
            .compare_without_as(false)
            .skip_refutation()
            .build();
        time(&format!("analysis/{sel}"), 15, || {
            let mut session = SessionBuilder::new(cfg)
                .harness(harness.clone())
                .build()
                .expect("harness input is valid");
            let candidates = session.candidates().expect("pipeline runs").len();
            (session.metrics().pointer.cg_edges, candidates)
        });
    }
}

fn refutation_budget() {
    let (_, app, _) = sierra_bench::size_classes().remove(1);
    group("ablation_budget");
    for budget in [10usize, 100, 5_000] {
        let cfg = SierraConfig::builder()
            .refuter(RefuterConfig {
                max_paths: budget,
                ..Default::default()
            })
            .compare_without_as(false)
            .build();
        time(&format!("max_paths/{budget}"), 10, || {
            Sierra::with_config(cfg)
                .analyze_app(app.clone())
                .races
                .len()
        });
    }
}

fn cache_ablation() {
    let (_, app, _) = sierra_bench::size_classes().remove(2); // Astrid (largest)
    group("ablation_cache");
    for (label, use_cache) in [("cache_on", true), ("cache_off", false)] {
        let cfg = SierraConfig::builder()
            .refuter(RefuterConfig {
                use_cache,
                ..Default::default()
            })
            .compare_without_as(false)
            .build();
        time(&format!("refutation/{label}"), 8, || {
            Sierra::with_config(cfg)
                .analyze_app(app.clone())
                .races
                .len()
        });
    }
}

fn index_sensitivity() {
    // The §6.5 future-work container model: compare indexed-container
    // analysis with per-slot fields vs the summarized field.
    let mut app = android_model::AndroidAppBuilder::new("IndexFixture");
    let mut truth = corpus::GroundTruth::new();
    corpus::Idiom::IndexedBuffer.plant(&mut app, "com.fix.Buffer", &mut truth);
    let app = app.finish().expect("fixture builds");
    let harness = harness_gen::generate(app);
    group("ablation_index_sensitivity");
    for (label, on) in [("index_sensitive", true), ("summarized", false)] {
        let opts = pointer::AnalysisOptions {
            index_sensitive: on,
            ..pointer::AnalysisOptions::default()
        };
        time(&format!("analysis/{label}"), 20, || {
            pointer::analyze_opts(&harness, SelectorKind::ActionSensitive(1), opts).cg_edge_count()
        });
    }
}

fn schedule_exploration() {
    // Random vs systematic schedule exploration (the §6.4 "efficient ways
    // to explore schedules" discussion) under comparable budgets.
    let (app, _) = corpus::figures::inter_component();
    group("ablation_exploration");
    time("random_64_runs", 15, || {
        eventracer::detect(
            &app,
            &eventracer::EventRacerConfig {
                runs: 64,
                steps_per_episode: 6,
                activity_coverage: 1.0,
                ..Default::default()
            },
        )
        .races
        .len()
    });
    time("systematic_64_runs", 15, || {
        eventracer::detect_systematic(
            &app,
            &eventracer::SystematicConfig {
                max_runs: 64,
                ..Default::default()
            },
        )
        .races
        .len()
    });
}

fn main() {
    context_ablation();
    refutation_budget();
    cache_ablation();
    index_sensitivity();
    schedule_exploration();
}
