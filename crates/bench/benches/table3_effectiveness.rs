//! Table 3: effectiveness — the full SIERRA pipeline per app size class.
//!
//! The paper's Table 3 reports, per app: harnesses, actions, HB edges,
//! racy pairs without/with action sensitivity, and races after refutation.
//! This bench times the pipeline producing those numbers and asserts
//! the headline shape (AS reduces pairs; refutation reduces reports).
//!
//! ```sh
//! cargo bench --bench table3_effectiveness
//! ```

use sierra_bench::{group, time};
use sierra_core::{Sierra, SierraConfig};

fn main() {
    group("table3_effectiveness");
    for (name, app, _) in sierra_bench::size_classes() {
        // Sanity-check the shape once, outside the timed loop.
        let result = Sierra::new().analyze_app(app.clone());
        assert!(result.racy_pairs_with_as <= result.racy_pairs_without_as);
        assert!(result.races.len() <= result.racy_pairs_with_as);

        time(&format!("full_pipeline/{name}"), 10, || {
            Sierra::new().analyze_app(app.clone()).races.len()
        });
        let cfg = SierraConfig::builder().compare_without_as(false).build();
        time(&format!("pipeline_no_comparison_pass/{name}"), 10, || {
            Sierra::with_config(cfg)
                .analyze_app(app.clone())
                .races
                .len()
        });
    }
}
