//! Table 3: effectiveness — the full SIERRA pipeline per app size class.
//!
//! The paper's Table 3 reports, per app: harnesses, actions, HB edges,
//! racy pairs without/with action sensitivity, and races after refutation.
//! This bench measures the pipeline producing those numbers and asserts
//! the headline shape (AS reduces pairs; refutation reduces reports).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sierra_core::{Sierra, SierraConfig};

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3_effectiveness");
    group.sample_size(20);
    for (name, app, _) in sierra_bench::size_classes() {
        // Sanity-check the shape once, outside the timed loop.
        let result = Sierra::new().analyze_app(app.clone());
        assert!(result.racy_pairs_with_as <= result.racy_pairs_without_as);
        assert!(result.races.len() <= result.racy_pairs_with_as);

        group.bench_with_input(BenchmarkId::new("full_pipeline", name), &app, |b, app| {
            b.iter(|| Sierra::new().analyze_app(app.clone()).races.len())
        });
        group.bench_with_input(
            BenchmarkId::new("pipeline_no_comparison_pass", name),
            &app,
            |b, app| {
                let cfg = SierraConfig { compare_without_as: false, ..Default::default() };
                b.iter(|| Sierra::with_config(cfg).analyze_app(app.clone()).races.len())
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
