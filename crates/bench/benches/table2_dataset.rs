//! Table 2: synthesizing the 20-app dataset.
//!
//! Benchmarks corpus construction (the stand-in for APK parsing + DroidEL
//! preprocessing) per app size class, and the whole dataset.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_dataset(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_dataset");
    for spec in corpus::TWENTY
        .iter()
        .filter(|s| matches!(s.name, "VuDroid" | "NPR News" | "Astrid"))
    {
        group.bench_with_input(BenchmarkId::new("build_app", spec.name), spec, |b, spec| {
            b.iter(|| corpus::twenty::build_app(black_box(*spec)))
        });
    }
    group.bench_function("build_all_twenty", |b| b.iter(|| corpus::twenty::build_all().len()));
    group.finish();
}

criterion_group!(benches, bench_dataset);
criterion_main!(benches);
