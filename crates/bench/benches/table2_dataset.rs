//! Table 2: synthesizing the 20-app dataset.
//!
//! Times corpus construction (the stand-in for APK parsing + DroidEL
//! preprocessing) per app size class, and the whole dataset.
//!
//! ```sh
//! cargo bench --bench table2_dataset
//! ```

use sierra_bench::{group, time};

fn main() {
    group("table2_dataset");
    for spec in corpus::TWENTY
        .iter()
        .filter(|s| matches!(s.name, "VuDroid" | "NPR News" | "Astrid"))
    {
        time(&format!("build_app/{}", spec.name), 20, || {
            corpus::twenty::build_app(*spec)
        });
    }
    time("build_all_twenty", 10, || corpus::twenty::build_all().len());
}
