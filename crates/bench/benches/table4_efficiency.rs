//! Table 4: efficiency — per-stage cost of the pipeline.
//!
//! The paper breaks analysis time into CG+PA (dominant), HBG construction
//! (cheap), and refutation (second-largest). Each stage is timed in
//! isolation on the medium app so the relative costs can be compared, and
//! the per-stage work counters (`StageMetrics`) are printed alongside.
//!
//! A final group measures the parallel refutation stage on a
//! refutation-bound stress app (`--refute-jobs 1` vs `4`) and writes all
//! measurements to `BENCH_table4.json` for CI artifact upload.
//!
//! ```sh
//! cargo bench --bench table4_efficiency
//! ```

use pointer::{Access, SelectorKind};
use sierra_bench::{group, time};
use sierra_core::json::{num, obj};
use sierra_core::{
    refute_candidates, Json, MemoryStore, SessionBuilder, Sierra, SierraConfig, SummaryStore,
};
use std::sync::Arc;
use std::time::Duration;
use symexec::{Refuter, RefuterConfig};

/// Unordered conflicting same-field pairs (the refutation stage's input),
/// without the SHBG filter — fine for timing fixtures where every
/// cross-action conflicting pair is a candidate by construction.
fn conflicting_pairs(
    accesses: &[Access],
    unordered: impl Fn(&Access, &Access) -> bool,
) -> Vec<(Access, Access)> {
    let mut pairs = Vec::new();
    for i in 0..accesses.len() {
        for j in i + 1..accesses.len() {
            let (a, b) = (&accesses[i], &accesses[j]);
            if a.action != b.action
                && (a.is_write || b.is_write)
                && a.overlaps(b)
                && unordered(a, b)
            {
                pairs.push((a.clone(), b.clone()));
            }
        }
    }
    pairs
}

fn main() {
    let (_, app, _) = sierra_bench::size_classes().remove(1); // NPR News
    group("table4_efficiency");

    let t_harness = time("stage_harness_generation", 30, || {
        harness_gen::generate(app.clone()).harness_count()
    });

    let harness = harness_gen::generate(app.clone());
    let t_cg_pa = time("stage_cg_pa", 30, || {
        pointer::analyze(&harness, SelectorKind::ActionSensitive(1))
            .actions
            .len()
    });

    let analysis = pointer::analyze(&harness, SelectorKind::ActionSensitive(1));
    let t_hbg = time("stage_hbg", 30, || {
        shbg::build(&analysis, &harness).ordered_pair_count()
    });

    let graph = shbg::build(&analysis, &harness);
    let accesses =
        pointer::collect_accesses(&analysis, &harness.app.program, Some(harness.harness_class));
    let pairs = conflicting_pairs(&accesses, |a, b| graph.unordered(a.action, b.action));
    assert!(!pairs.is_empty(), "the fixture must produce candidates");
    let t_refutation = time("stage_refutation", 30, || {
        let mut refuter = Refuter::new(&analysis, &harness.app.program, RefuterConfig::default())
            .with_message_model(harness.app.framework.message_what);
        let mut kept = 0;
        for (a, bb) in &pairs {
            if refuter.refute_pair(a, bb) != symexec::Outcome::Refuted {
                kept += 1;
            }
        }
        kept
    });

    // The work counters behind the timings (one staged run end to end).
    let result = Sierra::new().analyze_app(app.clone());
    let m = &result.metrics;
    group("table4_work_counters");
    println!(
        "pointer: {} worklist iterations, {} propagations, {} CG edges, {} contexts, {} objects, {} pts-set bytes",
        m.pointer.worklist_iterations,
        m.pointer.propagations,
        m.pointer.cg_edges,
        m.pointer.reachable_contexts,
        m.pointer.abstract_objects,
        m.pointer.pts_set_bytes
    );
    println!(
        "shbg:    {} rule applications ({} accepted) over {} fixpoint rounds, {} closure SCCs",
        m.shbg.total_applications(),
        m.shbg.total_accepted(),
        m.shbg.fixpoint_rounds,
        m.shbg.closure_sccs
    );
    println!(
        "refuter: {} paths over {} queries ({} refuted, {} budget-exhausted)",
        m.refuter.paths, m.refuter.queries, m.refuter.refuted, m.refuter.budget_exhausted
    );

    // Parallel refutation speedup on a refutation-bound stress app: each
    // of its candidate pairs drives the backward executor to its path
    // budget, so the stage is embarrassingly parallel across pairs.
    group("refutation_parallel_speedup");
    let stress = sierra_bench::refutation_stress_app(13, 8);
    let stress_harness = harness_gen::generate(stress);
    let stress_analysis = pointer::analyze(&stress_harness, SelectorKind::ActionSensitive(1));
    let stress_accesses = pointer::collect_accesses(
        &stress_analysis,
        &stress_harness.app.program,
        Some(stress_harness.harness_class),
    );
    // Keep only the posted-runnable vs lifecycle write-write pairs:
    // other combinations (guard-field reads, lifecycle-vs-lifecycle
    // writes) resolve cheaply and would dilute the measurement.
    let posted = |a: &Access| {
        matches!(
            stress_analysis.actions.action(a.action).kind,
            android_model::ActionKind::RunnablePost
        )
    };
    let stress_pairs = conflicting_pairs(&stress_accesses, |a, b| {
        a.is_write && b.is_write && posted(a) != posted(b)
    });
    assert!(
        stress_pairs.len() >= 8,
        "stress app must produce one candidate per field, got {}",
        stress_pairs.len()
    );
    let what = stress_harness.app.framework.message_what;
    let refute_with = |jobs: usize| {
        refute_candidates(
            &stress_analysis,
            &stress_harness.app.program,
            what,
            RefuterConfig::default(),
            jobs,
            &stress_pairs,
            None,
        )
    };
    let probe = refute_with(1);
    assert!(
        probe.stats.budget_exhausted == stress_pairs.len(),
        "every stress query must exhaust the path budget ({} of {})",
        probe.stats.budget_exhausted,
        stress_pairs.len()
    );
    println!(
        "stress fixture: {} candidate pairs, {} paths explored per serial run",
        stress_pairs.len(),
        probe.stats.paths
    );
    let t_jobs1 = time("refute_candidates_jobs_1", 10, || {
        refute_with(1).outcomes.len()
    });
    let t_jobs4 = time("refute_candidates_jobs_4", 10, || {
        refute_with(4).outcomes.len()
    });
    let speedup = t_jobs1.as_secs_f64() / t_jobs4.as_secs_f64();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("parallel refutation speedup at 4 jobs: {speedup:.2}x ({cores} core(s) available)");
    if cores < 4 {
        println!("note: fewer than 4 cores available; the 4-job run cannot realize its full speedup here");
    }

    // Prefilter ablation: the stress app's GUI handlers carry pairs the
    // refuter can only resolve by exhausting its path budget, while the
    // prefilter discharges them statically. Comparing the refutation
    // stage with and without pruning shows the candidate-reduction
    // payoff end to end.
    group("prefilter_ablation");
    let run_stress = |no_prefilter: bool| {
        let app = sierra_bench::refutation_stress_app(13, 8);
        let cfg = SierraConfig::builder().no_prefilter(no_prefilter).build();
        Sierra::with_config(cfg).analyze_app(app)
    };
    let pf = run_stress(false);
    let stress_candidates = pf.racy_pairs_with_as;
    let pruned_pairs = pf.pruned.len();
    let reduction = pruned_pairs as f64 / stress_candidates.max(1) as f64;
    let ps = pf.metrics.prefilter;
    println!(
        "prefilter: {pruned_pairs} of {stress_candidates} stress candidates pruned ({:.1}%) — escape {}, guarded {}, constprop {}; {} infeasible edges",
        reduction * 100.0,
        ps.pruned_escape,
        ps.pruned_guarded,
        ps.pruned_constprop,
        ps.infeasible_edges
    );
    let refute_stage_mean = |no_prefilter: bool| {
        let iters = 3u32;
        let mut total = Duration::ZERO;
        for _ in 0..iters {
            total += run_stress(no_prefilter).metrics.timings.refutation;
        }
        total / iters
    };
    let t_refute_pf = refute_stage_mean(false);
    let t_refute_nopf = refute_stage_mean(true);
    println!(
        "refutation stage: {t_refute_pf:.3?} with prefilter vs {t_refute_nopf:.3?} without ({:.2}x)",
        t_refute_nopf.as_secs_f64() / t_refute_pf.as_secs_f64().max(1e-9)
    );

    // Pointer-solver ablation: online cycle collapse on a cycle-chain
    // stress app (work counters and wall clock), plus the overlapped
    // comparison pass end to end on the medium app.
    group("pointer_ablation");
    let cyc_harness = harness_gen::generate(sierra_bench::pointer_cycle_stress_app(48, 8));
    let analyze_cycles = |collapse: bool| {
        pointer::analyze_opts(
            &cyc_harness,
            SelectorKind::ActionSensitive(1),
            pointer::AnalysisOptions {
                cycle_collapse: collapse,
                ..pointer::AnalysisOptions::default()
            },
        )
    };
    let pa_on = analyze_cycles(true);
    let pa_off = analyze_cycles(false);
    assert!(
        pa_on.stats.collapsed_sccs >= 48,
        "every chained cycle must collapse, got {}",
        pa_on.stats.collapsed_sccs
    );
    assert!(
        pa_on.stats.worklist_iterations < pa_off.stats.worklist_iterations,
        "collapse must reduce worklist iterations ({} vs {})",
        pa_on.stats.worklist_iterations,
        pa_off.stats.worklist_iterations
    );
    assert!(
        pa_on.stats.propagations < pa_off.stats.propagations,
        "collapse must reduce propagations ({} vs {})",
        pa_on.stats.propagations,
        pa_off.stats.propagations
    );
    println!(
        "cycle fixture (48 cycles × 8 locals): {} SCC(s) collapsed ({} node(s)); \
         worklist iterations {} vs {} without collapse, propagations {} vs {}",
        pa_on.stats.collapsed_sccs,
        pa_on.stats.collapsed_nodes,
        pa_on.stats.worklist_iterations,
        pa_off.stats.worklist_iterations,
        pa_on.stats.propagations,
        pa_off.stats.propagations,
    );
    let t_collapse_on = time("cg_pa_cycle_collapse_on", 20, || {
        analyze_cycles(true).stats.worklist_iterations
    });
    let t_collapse_off = time("cg_pa_cycle_collapse_off", 20, || {
        analyze_cycles(false).stats.worklist_iterations
    });

    let overlap_run = |overlap: bool| {
        let cfg = SierraConfig::builder().overlap_compare(overlap).build();
        Sierra::with_config(cfg).analyze_app(app.clone())
    };
    let overlap_probe = overlap_run(true);
    let overlap_saved = overlap_probe.metrics.overlap_saved;
    println!(
        "overlapped comparison pass: compare {:.3?} hidden behind refutation, {:.3?} saved",
        overlap_probe.metrics.timings.compare, overlap_saved
    );
    let t_overlap_on = time("pipeline_overlap_compare_on", 10, || {
        overlap_run(true).races.len()
    });
    let t_overlap_off = time("pipeline_overlap_compare_off", 10, || {
        overlap_run(false).races.len()
    });
    println!(
        "end-to-end with overlap {:.3?} vs serial {:.3?} ({:.2}x)",
        t_overlap_on,
        t_overlap_off,
        t_overlap_off.as_secs_f64() / t_overlap_on.as_secs_f64().max(1e-9)
    );

    // Triage ablation: the harm classifier's work counters and crash
    // precision/recall over the whole 20-app corpus, plus the end-to-end
    // cost of the stage on the medium app (on vs `--no-triage`).
    group("triage_ablation");
    let crash_verdicts = |result: &sierra_core::SierraResult| {
        let p = &result.harness.app.program;
        let mut crash: std::collections::BTreeMap<(String, String), bool> =
            std::collections::BTreeMap::new();
        for r in &result.races {
            if let Some(t) = &r.triage {
                let f = p.field(r.field);
                *crash
                    .entry((p.class_name(f.class).to_owned(), p.name(f.name).to_owned()))
                    .or_insert(false) |= t.harm.is_crash();
            }
        }
        crash
    };
    let mut triage_stats = sierra_core::TriageStats::default();
    let mut harm_eval = corpus::HarmEval::default();
    // The twenty apps plus the triage fixture: the fixture carries the
    // crash-capable labels, the corpus the guard-derived benign ones.
    let harm_corpus = corpus::TWENTY
        .iter()
        .map(|spec| corpus::twenty::build_app(*spec))
        .chain(std::iter::once(corpus::triage_idioms::triage_idioms_app()));
    for (corpus_app, truth) in harm_corpus {
        let result = Sierra::new().analyze_app(corpus_app);
        triage_stats.merge(&result.metrics.triage);
        let verdicts = crash_verdicts(&result);
        harm_eval.merge(
            truth.evaluate_harm(
                verdicts
                    .iter()
                    .map(|((c, f), x)| (c.as_str(), f.as_str(), *x)),
            ),
        );
    }
    println!(
        "triage over the corpus + fixture: {} race(s) classified ({} null-deref, {} use-before-init, {} value-inconsistency, {} likely-benign), {} dataflow iterations over {} method(s)",
        triage_stats.classified,
        triage_stats.null_deref,
        triage_stats.use_before_init,
        triage_stats.value_inconsistency,
        triage_stats.likely_benign,
        triage_stats.dataflow_iterations,
        triage_stats.methods_analyzed,
    );
    println!(
        "crash-precision {:.2}, crash-recall {:.2} over {} harm-scored site(s)",
        harm_eval.precision(),
        harm_eval.recall(),
        harm_eval.scored
    );
    let triage_run = |no_triage: bool| {
        let cfg = SierraConfig::builder().no_triage(no_triage).build();
        Sierra::with_config(cfg).analyze_app(app.clone())
    };
    let t_triage_on = time("pipeline_triage_on", 10, || triage_run(false).races.len());
    let t_triage_off = time("pipeline_triage_off", 10, || triage_run(true).races.len());
    println!(
        "end-to-end with triage {t_triage_on:.3?} vs without {t_triage_off:.3?} ({:.1}% overhead)",
        (t_triage_on.as_secs_f64() / t_triage_off.as_secs_f64().max(1e-9) - 1.0) * 100.0
    );

    // Message-history ablation: the protocol-idiom fixtures each plant
    // one false positive that only the realizable-event-ordering check
    // can discharge (dialog-dismiss, fragment-detach, task-cancel,
    // pause-unregister) next to one true race it must not touch. The
    // corpus-wide counters are deterministic and gated; the end-to-end
    // timings show what the stage costs on the medium app.
    group("histories_ablation");
    let mut hist = sierra_core::HistoryStats::default();
    let mut hist_missed = 0usize;
    let mut hist_surviving_fps = 0usize;
    for (fixture, proto_app, truth) in corpus::protocol_idioms::build_all() {
        let result = Sierra::new().analyze_app(proto_app);
        let h = &result.metrics.histories;
        hist.components += h.components;
        hist.pairs_checked += h.pairs_checked;
        hist.product_edges += h.product_edges;
        hist.discharged_unregistered += h.discharged_unregistered;
        hist.discharged_destroy += h.discharged_destroy;
        hist.discharged_pause += h.discharged_pause;
        hist.dead_callbacks += h.dead_callbacks;
        hist.infeasible_exported += h.infeasible_exported;
        let p = &result.harness.app.program;
        let mut groups: Vec<(String, String)> = result
            .races
            .iter()
            .map(|r| {
                let f = p.field(r.field);
                (p.class_name(f.class).to_owned(), p.name(f.name).to_owned())
            })
            .collect();
        groups.sort();
        groups.dedup();
        let eval = truth.evaluate(groups.iter().map(|(c, f)| (c.as_str(), f.as_str())));
        hist_missed += eval.missed;
        hist_surviving_fps += eval.false_positives + eval.unplanted;
        std::hint::black_box(fixture);
    }
    assert!(
        hist_missed == 0 && hist_surviving_fps == 0,
        "histories must discharge every planted FP and keep every true race \
         ({hist_missed} missed, {hist_surviving_fps} surviving FPs)"
    );
    println!(
        "histories over the protocol fixtures: {} pair(s) checked ({} product edges), \
         {} discharged ({} unregistered, {} destroy-dominates, {} pause-quiesced), \
         {} dead callback(s), {} infeasible edge(s) exported; 0 missed, 0 surviving FPs",
        hist.pairs_checked,
        hist.product_edges,
        hist.discharged_total(),
        hist.discharged_unregistered,
        hist.discharged_destroy,
        hist.discharged_pause,
        hist.dead_callbacks,
        hist.infeasible_exported,
    );
    let histories_run = |no_histories: bool| {
        let cfg = SierraConfig::builder().no_histories(no_histories).build();
        Sierra::with_config(cfg).analyze_app(app.clone())
    };
    let t_histories_on = time("pipeline_histories_on", 10, || {
        histories_run(false).races.len()
    });
    let t_histories_off = time("pipeline_histories_off", 10, || {
        histories_run(true).races.len()
    });
    println!(
        "end-to-end with histories {t_histories_on:.3?} vs without {t_histories_off:.3?} ({:.1}% overhead)",
        (t_histories_on.as_secs_f64() / t_histories_off.as_secs_f64().max(1e-9) - 1.0) * 100.0
    );

    // Summary-store reuse: the edit-pair fixture's two versions differ by
    // one method body whose edit is a points-to no-op, so a warm run over
    // a store primed with the base version recomputes exactly one summary
    // and reuses the whole points-to analysis (zero solver iterations).
    // The gated counters prove the incrementality claim; the timings show
    // what it buys.
    group("summary_reuse");
    let run_edit = |app: android_model::AndroidApp, store: Arc<dyn SummaryStore>| {
        SessionBuilder::new(SierraConfig::default())
            .app(app)
            .store(store)
            .build()
            .expect("edit-pair fixture is valid")
            .finish()
            .expect("pipeline runs")
    };
    let edit_store: Arc<dyn SummaryStore> = Arc::new(MemoryStore::new());
    let reuse_cold = run_edit(corpus::edit_pairs::base_app(), Arc::clone(&edit_store));
    let reuse_warm = run_edit(corpus::edit_pairs::edited_app(), Arc::clone(&edit_store));
    let (cold_link, warm_link) = (reuse_cold.metrics.link, reuse_warm.metrics.link);
    assert!(
        warm_link.pointer_iterations_run * 2 < cold_link.pointer_iterations_run,
        "warm solver work must stay under half of cold ({} vs {})",
        warm_link.pointer_iterations_run,
        cold_link.pointer_iterations_run
    );
    println!(
        "edit-pair warm run: {} summaries reused, {} recomputed, analysis reused: {}; \
         pointer iterations {} cold vs {} warm",
        warm_link.summaries_reused,
        warm_link.summaries_recomputed,
        warm_link.analysis_reused,
        cold_link.pointer_iterations_run,
        warm_link.pointer_iterations_run,
    );
    let t_reuse_cold = time("analysis_cold_store", 20, || {
        let fresh: Arc<dyn SummaryStore> = Arc::new(MemoryStore::new());
        run_edit(corpus::edit_pairs::base_app(), fresh).races.len()
    });
    let t_reuse_warm = time("analysis_warm_store", 20, || {
        run_edit(corpus::edit_pairs::edited_app(), Arc::clone(&edit_store))
            .races
            .len()
    });

    // Corpus throughput: the whole 20-app dataset built over one shared
    // symbol arena and analyzed back to back, recording the per-app
    // latency distribution. The p50/p99 latencies and the process peak
    // RSS are the SLO numbers `bench_gate` holds within band.
    group("corpus_throughput");
    let corpus_arena = Arc::new(apir::SymbolArena::new());
    let corpus_apps = corpus::twenty::build_all_with(Some(Arc::clone(&corpus_arena)));
    let (scratch_reused_before, _) = pointer::scratch_pool_stats();
    let mut latencies: Vec<Duration> = corpus_apps
        .into_iter()
        .map(|(_, corpus_app, _)| {
            let start = std::time::Instant::now();
            let result = Sierra::new().analyze_app(corpus_app);
            std::hint::black_box(result.races.len());
            start.elapsed()
        })
        .collect();
    latencies.sort_unstable();
    let corpus_p50 = latencies[latencies.len() / 2];
    let corpus_p99 = latencies[(latencies.len() * 99 / 100).min(latencies.len() - 1)];
    let (scratch_reused_after, scratch_fresh) = pointer::scratch_pool_stats();
    let scratch_reused = scratch_reused_after.saturating_sub(scratch_reused_before);
    assert!(
        scratch_reused > 0,
        "a multi-app corpus run must reuse pooled solver scratch"
    );
    let corpus_peak_rss_kb = peak_rss_kb().unwrap_or(0);
    println!(
        "corpus latency over {} apps: p50 {corpus_p50:.3?}, p99 {corpus_p99:.3?}; \
         peak RSS {corpus_peak_rss_kb} KB",
        latencies.len()
    );
    println!(
        "shared arena: {} symbols, {} bytes resident; solver scratch reused {scratch_reused} time(s) ({scratch_fresh} fresh allocations process-wide)",
        corpus_arena.len(),
        corpus_arena.bytes_resident()
    );

    // Persistent artifact reuse: the medium app analyzed by a cold
    // process (empty on-disk store) vs a warm process. Each warm
    // iteration opens a *fresh* `DiskStore` instance over the populated
    // directory — its in-memory maps start empty, so the whole
    // points-to analysis must come back through the versioned artifact
    // blob, exactly as a new OS process would see it. A shared-store
    // corpus pass then shows framework-origin summaries computed once
    // and served to every other app. The warm/cold ratio, the zero
    // warm solver iterations, and the shared counter are the numbers
    // `bench_gate` holds.
    group("artifact_reuse");
    let artifact_dir =
        std::env::temp_dir().join(format!("sierra-bench-artifacts-{}", std::process::id()));
    let run_disk = |dir: &std::path::Path| {
        let store: Arc<dyn SummaryStore> =
            Arc::new(sierra_core::DiskStore::new(dir).expect("bench cache dir"));
        SessionBuilder::new(SierraConfig::default())
            .app(app.clone())
            .store(store)
            .build()
            .expect("medium app is valid")
            .finish()
            .expect("pipeline runs")
    };
    let t_artifact_cold = time("artifact_cold_process", 10, || {
        let _ = std::fs::remove_dir_all(&artifact_dir);
        run_disk(&artifact_dir).races.len()
    });
    // The last cold iteration left the directory populated; probe one
    // warm "process" for its reuse counters before timing the rest.
    let warm_probe = run_disk(&artifact_dir);
    let artifact_warm_link = warm_probe.metrics.link;
    assert!(
        artifact_warm_link.analysis_reused,
        "a fresh store instance over a populated directory must reuse the artifact blob"
    );
    assert_eq!(
        artifact_warm_link.pointer_iterations_run, 0,
        "an artifact hit must skip the solver entirely"
    );
    assert_eq!(
        artifact_warm_link.summaries_recomputed, 0,
        "an unchanged app must reuse every summary"
    );
    let t_artifact_warm = time("artifact_warm_process", 10, || {
        run_disk(&artifact_dir).races.len()
    });
    println!(
        "artifact reuse: cold process {t_artifact_cold:.3?} vs warm process {t_artifact_warm:.3?} \
         ({:.2}x); warm run reused {} summaries, 0 solver iterations",
        t_artifact_cold.as_secs_f64() / t_artifact_warm.as_secs_f64().max(1e-9),
        artifact_warm_link.summaries_reused,
    );
    let _ = std::fs::remove_dir_all(&artifact_dir);

    // Shared-store corpus pass over the three size-class apps: private
    // per-app stores, one shared framework layer. The first app
    // populates the layer; every later app's framework-origin methods
    // are served from it instead of being re-summarized.
    let shared_pass = |layer: Option<&Arc<dyn SummaryStore>>| {
        let mut shared_hits = 0usize;
        let mut elapsed = Duration::ZERO;
        for (_, corpus_app, _) in sierra_bench::size_classes() {
            let per_app: Arc<dyn SummaryStore> = Arc::new(MemoryStore::new());
            let mut builder = SessionBuilder::new(SierraConfig::default())
                .app(corpus_app)
                .store(per_app);
            if let Some(layer) = layer {
                builder = builder.shared_store(Arc::clone(layer));
            }
            let start = std::time::Instant::now();
            let result = builder
                .build()
                .expect("size-class app is valid")
                .finish()
                .expect("pipeline runs");
            elapsed += start.elapsed();
            shared_hits += result.metrics.link.summaries_shared;
        }
        (shared_hits, elapsed)
    };
    let framework_layer: Arc<dyn SummaryStore> = Arc::new(MemoryStore::new());
    let (summaries_shared_total, t_corpus_shared) = shared_pass(Some(&framework_layer));
    let (_, t_corpus_unshared) = shared_pass(None);
    assert!(
        summaries_shared_total >= 1,
        "later apps must be served framework summaries from the shared layer"
    );
    println!(
        "shared-store corpus pass over {} apps: {} framework summaries served from the shared \
         layer; {t_corpus_shared:.3?} shared vs {t_corpus_unshared:.3?} unshared",
        sierra_bench::size_classes().len(),
        summaries_shared_total,
    );

    // Machine-readable record for the CI artifact, rendered through the
    // shared `Json` type (no serde in-tree).
    let us = |d: Duration| Json::Num(d.as_secs_f64() * 1e6);
    let json = obj(vec![
        ("bench", Json::Str("table4_efficiency".to_owned())),
        ("app", Json::Str("NPR News".to_owned())),
        (
            "stage_mean_us",
            obj(vec![
                ("harness", us(t_harness)),
                ("cg_pa", us(t_cg_pa)),
                ("hbg", us(t_hbg)),
                ("refutation", us(t_refutation)),
            ]),
        ),
        (
            "counters",
            obj(vec![
                ("worklist_iterations", num(m.pointer.worklist_iterations)),
                ("propagations", num(m.pointer.propagations)),
                ("cg_edges", num(m.pointer.cg_edges)),
                ("pts_set_bytes", num(m.pointer.pts_set_bytes)),
                ("rule_applications", num(m.shbg.total_applications())),
                ("fixpoint_rounds", num(m.shbg.fixpoint_rounds)),
                ("closure_sccs", num(m.shbg.closure_sccs)),
                ("refuter_paths", num(m.refuter.paths)),
                ("refuter_queries", num(m.refuter.queries)),
            ]),
        ),
        (
            "refutation_parallel",
            obj(vec![
                ("candidate_pairs", num(stress_pairs.len())),
                ("cores_available", num(cores)),
                ("jobs1_mean_us", us(t_jobs1)),
                ("jobs4_mean_us", us(t_jobs4)),
                ("speedup", Json::Num(speedup)),
            ]),
        ),
        (
            "prefilter",
            obj(vec![
                ("stress_candidates", num(stress_candidates)),
                ("pruned_pairs", num(pruned_pairs)),
                ("reduction_ratio", Json::Num(reduction)),
                ("pruned_escape", num(ps.pruned_escape)),
                ("pruned_guarded", num(ps.pruned_guarded)),
                ("pruned_constprop", num(ps.pruned_constprop)),
                ("infeasible_edges", num(ps.infeasible_edges)),
                ("refute_with_prefilter_us", us(t_refute_pf)),
                ("refute_without_prefilter_us", us(t_refute_nopf)),
            ]),
        ),
        (
            "pointer_ablation",
            obj(vec![
                ("collapsed_sccs", num(pa_on.stats.collapsed_sccs)),
                ("collapsed_nodes", num(pa_on.stats.collapsed_nodes)),
                (
                    "worklist_iterations_collapse_on",
                    num(pa_on.stats.worklist_iterations),
                ),
                (
                    "worklist_iterations_collapse_off",
                    num(pa_off.stats.worklist_iterations),
                ),
                ("propagations_collapse_on", num(pa_on.stats.propagations)),
                ("propagations_collapse_off", num(pa_off.stats.propagations)),
                ("cg_pa_collapse_on_us", us(t_collapse_on)),
                ("cg_pa_collapse_off_us", us(t_collapse_off)),
                ("overlap_saved_us", us(overlap_saved)),
                ("pipeline_overlap_on_us", us(t_overlap_on)),
                ("pipeline_overlap_off_us", us(t_overlap_off)),
            ]),
        ),
        (
            "triage_ablation",
            obj(vec![
                ("triage_classified", num(triage_stats.classified)),
                ("triage_null_deref", num(triage_stats.null_deref)),
                ("triage_use_before_init", num(triage_stats.use_before_init)),
                (
                    "triage_value_inconsistency",
                    num(triage_stats.value_inconsistency),
                ),
                ("triage_likely_benign", num(triage_stats.likely_benign)),
                (
                    "triage_dataflow_iterations",
                    num(triage_stats.dataflow_iterations),
                ),
                (
                    "triage_methods_analyzed",
                    num(triage_stats.methods_analyzed),
                ),
                (
                    "triage_crash_precision_pct",
                    Json::Num(harm_eval.precision() * 100.0),
                ),
                (
                    "triage_crash_recall_pct",
                    Json::Num(harm_eval.recall() * 100.0),
                ),
                ("triage_harm_scored_sites", num(harm_eval.scored)),
                ("pipeline_triage_on_us", us(t_triage_on)),
                ("pipeline_triage_off_us", us(t_triage_off)),
            ]),
        ),
        (
            "histories_ablation",
            obj(vec![
                ("hist_components", num(hist.components)),
                ("hist_pairs_checked", num(hist.pairs_checked)),
                ("hist_product_edges", num(hist.product_edges)),
                (
                    "hist_discharged_unregistered",
                    num(hist.discharged_unregistered),
                ),
                ("hist_discharged_destroy", num(hist.discharged_destroy)),
                ("hist_discharged_pause", num(hist.discharged_pause)),
                ("hist_dead_callbacks", num(hist.dead_callbacks)),
                ("hist_infeasible_exported", num(hist.infeasible_exported)),
                ("hist_corpus_missed_races", num(hist_missed)),
                ("hist_corpus_surviving_fps", num(hist_surviving_fps)),
                ("pipeline_histories_on_us", us(t_histories_on)),
                ("pipeline_histories_off_us", us(t_histories_off)),
            ]),
        ),
        (
            "summary_reuse",
            obj(vec![
                (
                    "cold_pointer_iterations",
                    num(cold_link.pointer_iterations_run),
                ),
                (
                    "warm_pointer_iterations",
                    num(warm_link.pointer_iterations_run),
                ),
                ("summaries_reused", num(warm_link.summaries_reused)),
                ("summaries_recomputed", num(warm_link.summaries_recomputed)),
                ("analysis_reused", Json::Bool(warm_link.analysis_reused)),
                ("analysis_cold_store_us", us(t_reuse_cold)),
                ("analysis_warm_store_us", us(t_reuse_warm)),
            ]),
        ),
        (
            "artifact_reuse",
            obj(vec![
                ("artifact_cold_us", us(t_artifact_cold)),
                ("artifact_warm_process_us", us(t_artifact_warm)),
                (
                    "artifact_warm_pointer_iterations",
                    num(artifact_warm_link.pointer_iterations_run),
                ),
                (
                    "artifact_warm_analysis_reused",
                    Json::Bool(artifact_warm_link.analysis_reused),
                ),
                (
                    "artifact_warm_summaries_reused",
                    num(artifact_warm_link.summaries_reused),
                ),
                ("summaries_shared", num(summaries_shared_total)),
                ("corpus_shared_us", us(t_corpus_shared)),
                ("corpus_unshared_us", us(t_corpus_unshared)),
            ]),
        ),
        (
            "corpus_throughput",
            obj(vec![
                ("corpus_apps", num(corpus::TWENTY.len())),
                ("corpus_p50_latency_us", us(corpus_p50)),
                ("corpus_p99_latency_us", us(corpus_p99)),
                ("corpus_peak_rss_kb", num(corpus_peak_rss_kb as usize)),
                ("scratch_reused", num(scratch_reused as usize)),
                ("arena_symbols", num(corpus_arena.len())),
                ("arena_bytes", num(corpus_arena.bytes_resident())),
            ]),
        ),
    ]);
    let mut rendered = json.render();
    rendered.push('\n');
    std::fs::write("BENCH_table4.json", &rendered).expect("write BENCH_table4.json");
    println!("wrote BENCH_table4.json");

    // Human-readable throughput summary, uploaded as a CI artifact.
    let throughput = format!(
        "corpus_throughput (20-app dataset, shared symbol arena)\n\
         p50 per-app latency: {:.3} ms\n\
         p99 per-app latency: {:.3} ms\n\
         peak RSS:            {corpus_peak_rss_kb} KB\n\
         scratch reused:      {scratch_reused}\n\
         arena symbols:       {}\n\
         arena bytes:         {}\n\
         \n\
         artifact_reuse (NPR News, on-disk store; shared layer over the size classes)\n\
         cold process:        {:.3} ms\n\
         warm process:        {:.3} ms\n\
         warm solver iters:   {}\n\
         summaries shared:    {summaries_shared_total}\n\
         corpus shared pass:  {:.3} ms\n\
         corpus unshared:     {:.3} ms\n",
        corpus_p50.as_secs_f64() * 1e3,
        corpus_p99.as_secs_f64() * 1e3,
        corpus_arena.len(),
        corpus_arena.bytes_resident(),
        t_artifact_cold.as_secs_f64() * 1e3,
        t_artifact_warm.as_secs_f64() * 1e3,
        artifact_warm_link.pointer_iterations_run,
        t_corpus_shared.as_secs_f64() * 1e3,
        t_corpus_unshared.as_secs_f64() * 1e3,
    );
    std::fs::write("THROUGHPUT.txt", throughput).expect("write THROUGHPUT.txt");
    println!("wrote THROUGHPUT.txt");
}

/// The process's peak resident set size in KB, from `/proc/self/status`
/// (`VmHWM`). Returns `None` off Linux or if the field is absent; the
/// RSS SLO gate skips silently-zero values via the baseline band.
fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}
