//! Table 4: efficiency — per-stage cost of the pipeline.
//!
//! The paper breaks analysis time into CG+PA (dominant), HBG construction
//! (cheap), and refutation (second-largest). Each stage is timed in
//! isolation on the medium app so the relative costs can be compared, and
//! the per-stage work counters (`StageMetrics`) are printed alongside.
//!
//! ```sh
//! cargo bench --bench table4_efficiency
//! ```

use pointer::SelectorKind;
use sierra_bench::{group, time};
use sierra_core::Sierra;
use symexec::{Refuter, RefuterConfig};

fn main() {
    let (_, app, _) = sierra_bench::size_classes().remove(1); // NPR News
    group("table4_efficiency");

    time("stage_harness_generation", 30, || {
        harness_gen::generate(app.clone()).harness_count()
    });

    let harness = harness_gen::generate(app.clone());
    time("stage_cg_pa", 30, || {
        pointer::analyze(&harness, SelectorKind::ActionSensitive(1))
            .actions
            .len()
    });

    let analysis = pointer::analyze(&harness, SelectorKind::ActionSensitive(1));
    time("stage_hbg", 30, || {
        shbg::build(&analysis, &harness).ordered_pair_count()
    });

    let graph = shbg::build(&analysis, &harness);
    let accesses =
        pointer::collect_accesses(&analysis, &harness.app.program, Some(harness.harness_class));
    // Unordered conflicting pairs (the refutation stage's input).
    let mut pairs = Vec::new();
    for i in 0..accesses.len() {
        for j in i + 1..accesses.len() {
            let (a, b) = (&accesses[i], &accesses[j]);
            if a.action != b.action
                && (a.is_write || b.is_write)
                && a.overlaps(b)
                && graph.unordered(a.action, b.action)
            {
                pairs.push((a.clone(), b.clone()));
            }
        }
    }
    assert!(!pairs.is_empty(), "the fixture must produce candidates");
    time("stage_refutation", 30, || {
        let mut refuter = Refuter::new(&analysis, &harness.app.program, RefuterConfig::default())
            .with_message_model(harness.app.framework.message_what);
        let mut kept = 0;
        for (a, bb) in &pairs {
            if refuter.refute_pair(a, bb) != symexec::Outcome::Refuted {
                kept += 1;
            }
        }
        kept
    });

    // The work counters behind the timings (one staged run end to end).
    let result = Sierra::new().analyze_app(app);
    let m = &result.metrics;
    group("table4_work_counters");
    println!(
        "pointer: {} worklist iterations, {} propagations, {} CG edges, {} contexts, {} objects",
        m.pointer.worklist_iterations,
        m.pointer.propagations,
        m.pointer.cg_edges,
        m.pointer.reachable_contexts,
        m.pointer.abstract_objects
    );
    println!(
        "shbg:    {} rule applications ({} accepted) over {} fixpoint rounds",
        m.shbg.total_applications(),
        m.shbg.total_accepted(),
        m.shbg.fixpoint_rounds
    );
    println!(
        "refuter: {} paths over {} queries ({} refuted, {} budget-exhausted)",
        m.refuter.paths, m.refuter.queries, m.refuter.refuted, m.refuter.budget_exhausted
    );
}
