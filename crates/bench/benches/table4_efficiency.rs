//! Table 4: efficiency — per-stage cost of the pipeline.
//!
//! The paper breaks analysis time into CG+PA (dominant), HBG construction
//! (cheap), and refutation (second-largest). Each stage is benchmarked in
//! isolation on the medium app so the relative costs can be compared.

use criterion::{criterion_group, criterion_main, Criterion};
use pointer::SelectorKind;
use std::hint::black_box;
use symexec::{Refuter, RefuterConfig};

fn bench_stages(c: &mut Criterion) {
    let (_, app, _) = sierra_bench::size_classes().remove(1); // NPR News
    let mut group = c.benchmark_group("table4_efficiency");
    group.sample_size(30);

    group.bench_function("stage_harness_generation", |b| {
        b.iter(|| harness_gen::generate(black_box(app.clone())).harness_count())
    });

    let harness = harness_gen::generate(app.clone());
    group.bench_function("stage_cg_pa", |b| {
        b.iter(|| pointer::analyze(black_box(&harness), SelectorKind::ActionSensitive(1)).actions.len())
    });

    let analysis = pointer::analyze(&harness, SelectorKind::ActionSensitive(1));
    group.bench_function("stage_hbg", |b| {
        b.iter(|| shbg::build(black_box(&analysis), &harness).ordered_pair_count())
    });

    let graph = shbg::build(&analysis, &harness);
    let accesses = pointer::collect_accesses(&analysis, &harness.app.program, Some(harness.harness_class));
    // Unordered conflicting pairs (the refutation stage's input).
    let mut pairs = Vec::new();
    for i in 0..accesses.len() {
        for j in i + 1..accesses.len() {
            let (a, b) = (&accesses[i], &accesses[j]);
            if a.action != b.action
                && (a.is_write || b.is_write)
                && a.overlaps(b)
                && graph.unordered(a.action, b.action)
            {
                pairs.push((a.clone(), b.clone()));
            }
        }
    }
    assert!(!pairs.is_empty(), "the fixture must produce candidates");
    group.bench_function("stage_refutation", |b| {
        b.iter(|| {
            let mut refuter =
                Refuter::new(&analysis, &harness.app.program, RefuterConfig::default())
                    .with_message_model(harness.app.framework.message_what);
            let mut kept = 0;
            for (a, bb) in &pairs {
                if refuter.refute_pair(a, bb) != symexec::Outcome::Refuted {
                    kept += 1;
                }
            }
            kept
        })
    });
    group.finish();
}

criterion_group!(benches, bench_stages);
criterion_main!(benches);
