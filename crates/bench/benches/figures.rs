//! The paper's figures as timing runs.
//!
//! - Figure 1: detecting the intra-component `AsyncTask` race.
//! - Figure 2: detecting the inter-component receiver race.
//! - Figures 5 & 6: lifecycle/GUI HB construction (harness dominators).
//! - Figure 7: the inter-action transitivity fixpoint (rules 6 + 7).
//! - Figure 8: the refutation query on the guarded-timer pattern.
//!
//! ```sh
//! cargo bench --bench figures
//! ```

use pointer::SelectorKind;
use sierra_bench::{group, time};
use sierra_core::Sierra;

fn main() {
    group("figures");

    // Figures 1 and 2: end-to-end detection.
    let (fig1, _) = corpus::figures::intra_component();
    time("fig1_intra_component_detection", 20, || {
        Sierra::new().analyze_app(fig1.clone()).races.len()
    });
    let (fig2, _) = corpus::figures::inter_component();
    time("fig2_inter_component_detection", 20, || {
        Sierra::new().analyze_app(fig2.clone()).races.len()
    });

    // Figures 5/6/7: SHBG construction on a prepared analysis. The corpus's
    // ordered-posts idiom exercises rules 4–7; the lifecycle/GUI rules run
    // on every harness.
    let mut app = android_model::AndroidAppBuilder::new("HbFixture");
    let mut truth = corpus::GroundTruth::new();
    corpus::Idiom::OrderedPosts.plant(&mut app, "com.fix.Posts", &mut truth);
    corpus::Idiom::AsyncUiUpdate.plant(&mut app, "com.fix.News", &mut truth);
    let app = app.finish().expect("fixture builds");
    let harness = harness_gen::generate(app);
    let analysis = pointer::analyze(&harness, SelectorKind::ActionSensitive(1));
    time("fig5_fig6_fig7_shbg_construction", 30, || {
        shbg::build(&analysis, &harness).ordered_pair_count()
    });

    // Figure 8: the refutation showcase.
    let (fig8, _) = corpus::figures::open_sudoku_guard();
    time("fig8_refutation_pipeline", 20, || {
        let r = Sierra::new().analyze_app(fig8.clone());
        assert!(r.metrics.refuter.refuted > 0);
        r.races.len()
    });
}
