//! # sierra-prng — a tiny seeded PRNG (SplitMix64)
//!
//! The workspace needs randomness in exactly three places — synthesizing
//! the corpus, the dynamic detector's random scheduler, and randomized
//! property tests — and all three need *seeded determinism* far more than
//! they need statistical sophistication. SplitMix64 (Steele, Lea &
//! Flood, OOPSLA'14) is a 64-bit finalizer-style generator with a full
//! 2⁶⁴ period, passes BigCrush, and is four lines long, which keeps the
//! workspace free of external dependencies (the build environment has no
//! network access to a crates.io registry).
//!
//! Every stream is a pure function of the seed, on every platform and
//! Rust version — a requirement for the corpus: app `N` of the F-Droid
//! dataset must be byte-identical across machines and releases.

/// A seeded SplitMix64 generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform value in `0..bound` (`bound ≥ 1`). Uses Lemire's
    /// multiply-shift reduction; the modulo bias is < 2⁻⁶⁴·bound, far
    /// below anything our bounds (≤ a few thousand) can observe.
    pub fn usize(&mut self, bound: usize) -> usize {
        debug_assert!(bound >= 1, "bound must be at least 1");
        ((self.next_u64() as u128 * bound as u128) >> 64) as usize
    }

    /// A uniform value in `lo..hi` (`lo < hi`).
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo < hi);
        lo + self.usize((hi - lo) as usize) as i64
    }

    /// A uniform float in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        // 53 random bits / 2^53: every representable value equally likely.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A fair coin flip.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// A uniformly chosen element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.usize(items.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_seed_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(43);
        assert_ne!(SplitMix64::new(42).next_u64(), c.next_u64());
    }

    #[test]
    fn reference_vector_matches_splitmix64() {
        // First outputs for seed 1234567, from the reference C
        // implementation (Vigna, prng.di.unimi.it).
        let mut r = SplitMix64::new(1234567);
        assert_eq!(r.next_u64(), 6457827717110365317);
        assert_eq!(r.next_u64(), 3203168211198807973);
    }

    #[test]
    fn bounds_are_respected() {
        let mut r = SplitMix64::new(7);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let v = r.usize(5);
            assert!(v < 5);
            seen[v] = true;
            let f = r.f64();
            assert!((0.0..1.0).contains(&f));
            let i = r.range_i64(-4, 4);
            assert!((-4..4).contains(&i));
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit");
    }
}
